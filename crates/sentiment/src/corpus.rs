//! Tokenize-once interned text substrate for the §4 social pipeline.
//!
//! Every §4 consumer — sentiment scoring, word-cloud n-grams, the Fig. 6
//! outage keyword dictionary, emerging-topic mining — used to re-tokenize
//! each forum post from scratch and hash raw strings against `HashMap`
//! lexicons on every call. A [`TokenCorpus`] tokenizes each document
//! **exactly once** into compact `u32` token ids against a shared
//! [`Vocab`], and the vocab carries ID-space side tables (valence,
//! intensifier multiplier, negator/stop-word flags) compiled from the
//! global [`Lexicon`]/[`STOPWORDS`] the moment a word is first interned.
//! Scoring, n-gram counting, and keyword matching then become integer
//! loops over `&[u32]` slices with zero per-token allocation:
//!
//! * [`crate::analyzer::SentimentAnalyzer::score_ids`] — valence lookup is
//!   a vector index instead of a string hash;
//! * [`CompiledDict`] — the keyword dictionary as sorted id (pairs),
//!   matched by binary search over integers;
//! * [`IdNgramCounts`] — unigram/bigram counting keyed by ids, resolving
//!   strings only for the final top-k.
//!
//! Construction is parallel: documents are split into contiguous chunks,
//! each chunk tokenized and interned against a chunk-local vocabulary on
//! its own scoped thread, then merged in chunk order. Because chunks are
//! contiguous ranges in document order, the merged vocab assigns ids in
//! global first-appearance order — the corpus (ids, offsets, and vocab)
//! is **bit-identical for every worker count**, and every interned
//! consumer reproduces its string-based reference exactly (pinned by
//! `tests/social_parity.rs`).

use crate::keywords::KeywordDictionary;
use crate::lexicon::Lexicon;
use crate::tokenize::{for_each_token, is_stopword};
use std::collections::HashMap;
use std::ops::Range;

/// Bit set when the word is a negator.
const FLAG_NEGATOR: u8 = 1 << 0;
/// Bit set when the word is a stop-word.
const FLAG_STOPWORD: u8 = 1 << 1;
/// Bit set when the word is a content word (len > 1 and not a stop-word) —
/// the [`crate::tokenize::content_words`] filter as one bit test.
const FLAG_CONTENT: u8 = 1 << 2;

/// String interner with ID-space lexicon tables.
///
/// `word ↔ id` mapping plus one dense column per lexicon attribute, filled
/// at intern time so lookups during scoring are plain vector indexing.
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    ids: HashMap<String, u32>,
    words: Vec<String>,
    /// Valence per id; `0.0` means "not a sentiment word" — the same
    /// contract as [`Lexicon::valence`], which filters zero-valence entries.
    valence: Vec<f64>,
    /// Intensifier multiplier per id; `NaN` means "not an intensifier"
    /// (no real intensifier is NaN).
    intensity: Vec<f64>,
    flags: Vec<u8>,
}

impl Vocab {
    /// Empty vocabulary.
    pub fn new() -> Vocab {
        Vocab::default()
    }

    /// Intern `word` (already tokenized, i.e. lowercased), returning its
    /// id. Allocates and compiles the lexicon attributes only on first
    /// sight; repeat interns are a single hash lookup.
    pub fn intern(&mut self, word: &str) -> u32 {
        if let Some(&id) = self.ids.get(word) {
            return id;
        }
        self.push_new(word.to_string())
    }

    /// [`Vocab::intern`] taking ownership, so chunk-merge can move interned
    /// strings instead of re-allocating them.
    pub fn intern_owned(&mut self, word: String) -> u32 {
        if let Some(&id) = self.ids.get(word.as_str()) {
            return id;
        }
        self.push_new(word)
    }

    fn push_new(&mut self, word: String) -> u32 {
        let id = u32::try_from(self.words.len()).expect("vocab exceeds u32 id space");
        let lex = Lexicon::global();
        self.valence.push(lex.valence(&word).unwrap_or(0.0));
        self.intensity
            .push(lex.intensity(&word).unwrap_or(f64::NAN));
        let mut flags = 0u8;
        if lex.is_negator(&word) {
            flags |= FLAG_NEGATOR;
        }
        let stop = is_stopword(&word);
        if stop {
            flags |= FLAG_STOPWORD;
        }
        if word.len() > 1 && !stop {
            flags |= FLAG_CONTENT;
        }
        self.flags.push(flags);
        self.ids.insert(word.clone(), id);
        self.words.push(word);
        id
    }

    /// Id of a word, if interned.
    pub fn id(&self, word: &str) -> Option<u32> {
        self.ids.get(word).copied()
    }

    /// The word behind an id.
    pub fn word(&self, id: u32) -> &str {
        &self.words[id as usize]
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when no word has been interned.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Valence of an id; `0.0` when the word is not a sentiment word
    /// (mirrors [`Lexicon::valence`] returning `None`).
    #[inline]
    pub fn valence(&self, id: u32) -> f64 {
        self.valence[id as usize]
    }

    /// Intensifier multiplier of an id; `NaN` when the word is not an
    /// intensifier (mirrors [`Lexicon::intensity`] returning `None`).
    #[inline]
    pub fn intensity(&self, id: u32) -> f64 {
        self.intensity[id as usize]
    }

    /// Whether the id is a negator.
    #[inline]
    pub fn is_negator(&self, id: u32) -> bool {
        self.flags[id as usize] & FLAG_NEGATOR != 0
    }

    /// Whether the id is a stop-word.
    #[inline]
    pub fn is_stopword(&self, id: u32) -> bool {
        self.flags[id as usize] & FLAG_STOPWORD != 0
    }

    /// Whether the id is a content word (len > 1, not a stop-word) — the
    /// n-gram/word-cloud filter.
    #[inline]
    pub fn is_content(&self, id: u32) -> bool {
        self.flags[id as usize] & FLAG_CONTENT != 0
    }
}

/// One chunk's build output: a chunk-local vocabulary (in local
/// first-appearance order) plus the token stream against it.
struct Chunk {
    words: Vec<String>,
    tokens: Vec<u32>,
    /// Per-document offsets into `tokens`, starting at 0; `docs + 1` long.
    offsets: Vec<u32>,
}

impl Chunk {
    /// Tokenize and locally intern the documents of `range`.
    fn build(
        range: Range<usize>,
        parts_of: &(impl Fn(usize, &mut dyn FnMut(&str)) + Sync),
    ) -> Chunk {
        let mut ids: HashMap<String, u32> = HashMap::new();
        let mut words: Vec<String> = Vec::new();
        let mut tokens: Vec<u32> = Vec::new();
        let mut offsets: Vec<u32> = Vec::with_capacity(range.len() + 1);
        offsets.push(0);
        for doc in range {
            parts_of(doc, &mut |part| {
                for_each_token(part, |tok| {
                    let id = match ids.get(tok) {
                        Some(&id) => id,
                        None => {
                            let id = u32::try_from(words.len()).expect("vocab exceeds u32 ids");
                            ids.insert(tok.to_string(), id);
                            words.push(tok.to_string());
                            id
                        }
                    };
                    tokens.push(id);
                });
            });
            let end = u32::try_from(tokens.len()).expect("corpus exceeds u32 token offsets");
            offsets.push(end);
        }
        Chunk {
            words,
            tokens,
            offsets,
        }
    }
}

/// A tokenized-once corpus: every document's token ids, stored flat in CSR
/// layout (`offsets[i]..offsets[i + 1]` indexes document `i`'s slice of
/// `tokens`), against one shared [`Vocab`].
#[derive(Debug, Clone, Default)]
pub struct TokenCorpus {
    vocab: Vocab,
    tokens: Vec<u32>,
    offsets: Vec<u32>,
}

impl TokenCorpus {
    /// Build a corpus over `docs` documents on up to `workers` scoped
    /// threads. `parts_of(i, emit)` must call `emit` once per text part of
    /// document `i` (title, body, …); parts are tokenized back to back with
    /// an implicit word boundary between them, which matches joining the
    /// parts with any non-alphanumeric separator (e.g. `"\n"`) — so the
    /// token stream equals `tokenize(post.text())` without materialising
    /// the concatenated `String`.
    pub fn build_with<F>(docs: usize, workers: usize, parts_of: F) -> TokenCorpus
    where
        F: Fn(usize, &mut dyn FnMut(&str)) + Sync,
    {
        let chunks = par_map_ranges(docs, workers, |range| Chunk::build(range, &parts_of));
        TokenCorpus::from_chunks(chunks)
    }

    /// Merge per-chunk builds in chunk order into one corpus — the
    /// single-assignment vocab-merge discipline that makes every chunk
    /// count produce the same bytes.
    fn from_chunks(chunks: Vec<Chunk>) -> TokenCorpus {
        let mut iter = chunks.into_iter();
        // The first chunk's local ids are the global ids: interning its
        // words in order into the empty global vocab reproduces 0..k.
        let first = iter.next().expect("chunk_ranges yields at least one range");
        let mut vocab = Vocab::new();
        for word in first.words {
            vocab.intern_owned(word);
        }
        let mut tokens = first.tokens;
        let mut offsets = first.offsets;
        for chunk in iter {
            // Remap the chunk's local ids through the global vocab. New
            // words keep their local first-appearance order, so the merged
            // vocab equals the sequential single-chunk build's.
            let remap: Vec<u32> = chunk
                .words
                .into_iter()
                .map(|w| vocab.intern_owned(w))
                .collect();
            let base = u32::try_from(tokens.len()).expect("corpus exceeds u32 token offsets");
            tokens.extend(chunk.tokens.iter().map(|&t| remap[t as usize]));
            offsets.extend(chunk.offsets[1..].iter().map(|&o| base + o));
        }
        TokenCorpus {
            vocab,
            tokens,
            offsets,
        }
    }

    /// Build a corpus where each document is one plain text.
    pub fn from_texts<S: AsRef<str> + Sync>(texts: &[S], workers: usize) -> TokenCorpus {
        TokenCorpus::build_with(texts.len(), workers, |i, emit| emit(texts[i].as_ref()))
    }

    /// Append `new_docs` documents to the corpus — the incremental-ingest
    /// path. `parts_of` indexes the *new* documents from zero, with the
    /// same contract as [`TokenCorpus::build_with`].
    ///
    /// New words are interned in first-appearance order after the existing
    /// vocabulary, and existing ids never move — so extending a corpus is
    /// **bit-identical** to rebuilding it from scratch over the
    /// concatenated document list (vocab, tokens, and offsets alike), for
    /// every worker count. Consumers holding ids from the old epoch keep
    /// resolving them unchanged.
    pub fn extend_with<F>(&mut self, new_docs: usize, workers: usize, parts_of: F)
    where
        F: Fn(usize, &mut dyn FnMut(&str)) + Sync,
    {
        if new_docs == 0 {
            return;
        }
        if self.offsets.is_empty() {
            // A default-constructed corpus has no leading sentinel yet.
            self.offsets.push(0);
        }
        let chunks = par_map_ranges(new_docs, workers, |range| Chunk::build(range, &parts_of));
        self.absorb_chunks(chunks);
    }

    /// Merge appended per-chunk builds in chunk order onto the existing
    /// vocab/tokens/offsets (the tail of [`TokenCorpus::extend_with`]).
    fn absorb_chunks(&mut self, chunks: Vec<Chunk>) {
        for chunk in chunks {
            // Same merge as `build_with`: remap chunk-local ids through the
            // (now non-empty) global vocab, preserving first-appearance
            // order for genuinely new words.
            let remap: Vec<u32> = chunk
                .words
                .into_iter()
                .map(|w| self.vocab.intern_owned(w))
                .collect();
            let base = u32::try_from(self.tokens.len()).expect("corpus exceeds u32 token offsets");
            self.tokens
                .extend(chunk.tokens.iter().map(|&t| remap[t as usize]));
            self.offsets
                .extend(chunk.offsets[1..].iter().map(|&o| base + o));
        }
    }

    /// Number of documents.
    pub fn docs(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs() == 0
    }

    /// Token ids of document `i`.
    #[inline]
    pub fn doc(&self, i: usize) -> &[u32] {
        &self.tokens[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Total tokens across all documents.
    pub fn total_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Resolve document `i` back to its token strings (tests/debugging).
    pub fn doc_words(&self, i: usize) -> Vec<&str> {
        self.doc(i).iter().map(|&id| self.vocab.word(id)).collect()
    }

    /// Serialise the corpus into the persist layer's binary codec.
    ///
    /// Only the words (in id order), the token stream, and the CSR offsets
    /// are written — the vocab's lexicon side tables (valence, intensity,
    /// flags) are **recompiled** at decode time by re-interning the words
    /// in order against the global [`Lexicon`], which reproduces them
    /// bit-identically (interning is deterministic in word order), so the
    /// snapshot stays smaller and can never disagree with the lexicon the
    /// binary ships.
    pub fn encode_bin(&self, w: &mut serde::bin::Writer) {
        w.put_u64(self.vocab.words.len() as u64);
        for word in &self.vocab.words {
            w.put_str(word);
        }
        w.put_u64(self.tokens.len() as u64);
        for &t in &self.tokens {
            w.put_u32(t);
        }
        w.put_u64(self.offsets.len() as u64);
        for &o in &self.offsets {
            w.put_u32(o);
        }
    }

    /// Decode a corpus written by [`TokenCorpus::encode_bin`], validating
    /// every structural invariant (ids in range, offsets monotone and
    /// covering the token stream) so corrupt input surfaces as an
    /// [`serde::bin::Error`] instead of a later panic.
    pub fn decode_bin(r: &mut serde::bin::Reader<'_>) -> Result<TokenCorpus, serde::bin::Error> {
        use serde::bin::Error;
        let n_words = r.get_len()?;
        let mut vocab = Vocab::new();
        for _ in 0..n_words {
            vocab.intern_owned(r.get_str()?.to_string());
        }
        if vocab.len() != n_words {
            return Err(Error::Corrupt("corpus words are not distinct"));
        }
        let n_tokens = r.get_len()?;
        let mut tokens = Vec::with_capacity(n_tokens);
        for _ in 0..n_tokens {
            let t = r.get_u32()?;
            if t as usize >= n_words {
                return Err(Error::Corrupt("token id out of vocab range"));
            }
            tokens.push(t);
        }
        let n_offsets = r.get_len()?;
        let mut offsets = Vec::with_capacity(n_offsets);
        for _ in 0..n_offsets {
            offsets.push(r.get_u32()?);
        }
        if n_offsets == 0 {
            if n_tokens != 0 {
                return Err(Error::Corrupt("tokens without CSR offsets"));
            }
        } else {
            if offsets[0] != 0 || *offsets.last().expect("non-empty") as usize != n_tokens {
                return Err(Error::Corrupt("CSR offsets do not cover the token stream"));
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(Error::Corrupt("CSR offsets are not monotone"));
            }
        }
        Ok(TokenCorpus {
            vocab,
            tokens,
            offsets,
        })
    }
}

/// A [`KeywordDictionary`] compiled to id space: sorted unigram ids and
/// sorted bigram id pairs, matched by binary search. Entries whose words
/// never occur in the corpus vocabulary are dropped at compile time — no
/// token can ever match them.
#[derive(Debug, Clone)]
pub struct CompiledDict {
    unigrams: Vec<u32>,
    bigrams: Vec<(u32, u32)>,
}

impl CompiledDict {
    /// Compile `dict` against `vocab`.
    pub fn compile(dict: &KeywordDictionary, vocab: &Vocab) -> CompiledDict {
        let mut unigrams: Vec<u32> = dict.unigrams().filter_map(|w| vocab.id(w)).collect();
        unigrams.sort_unstable();
        let mut bigrams: Vec<(u32, u32)> = dict
            .bigrams()
            .filter_map(|(a, b)| Some((vocab.id(a)?, vocab.id(b)?)))
            .collect();
        bigrams.sort_unstable();
        CompiledDict { unigrams, bigrams }
    }

    /// Compiled entries (unigrams + bigrams) that can actually match.
    pub fn len(&self) -> usize {
        self.unigrams.len() + self.bigrams.len()
    }

    /// True when nothing can match.
    pub fn is_empty(&self) -> bool {
        self.unigrams.is_empty() && self.bigrams.is_empty()
    }

    /// Keyword occurrences in one token slice; bigram matches consume their
    /// tokens exactly like [`KeywordDictionary::count_matches`]. `consumed`
    /// is caller-provided scratch so corpus sweeps allocate nothing per
    /// document.
    ///
    /// A bigram-free dictionary never consumes a token, so its tally is the
    /// branchless membership kernel
    /// ([`analytics::kernels::count_members_u32`]) over the whole slice —
    /// no per-token branch, no scratch writes. Dictionaries with bigrams
    /// take the consuming walk.
    pub fn count_ids_with(&self, ids: &[u32], consumed: &mut Vec<bool>) -> usize {
        if self.bigrams.is_empty() {
            return analytics::kernels::count_members_u32(ids, &self.unigrams);
        }
        let mut matches = 0usize;
        consumed.clear();
        consumed.resize(ids.len(), false);
        for i in 0..ids.len().saturating_sub(1) {
            if self.bigrams.binary_search(&(ids[i], ids[i + 1])).is_ok() {
                matches += 1;
                consumed[i] = true;
                consumed[i + 1] = true;
            }
        }
        for (i, &id) in ids.iter().enumerate() {
            if !consumed[i] && self.unigrams.binary_search(&id).is_ok() {
                matches += 1;
            }
        }
        matches
    }

    /// Keyword occurrences in one token slice (allocating convenience).
    pub fn count_ids(&self, ids: &[u32]) -> usize {
        self.count_ids_with(ids, &mut Vec::new())
    }

    /// Per-document keyword occurrences over a whole corpus, fanned out in
    /// contiguous chunks over up to `workers` scoped threads. Counts are
    /// integers, so the result is identical for every worker count.
    pub fn count_corpus(&self, corpus: &TokenCorpus, workers: usize) -> Vec<usize> {
        let parts = par_map_ranges(corpus.docs(), workers, |range| {
            let mut scratch = Vec::new();
            range
                .map(|doc| self.count_ids_with(corpus.doc(doc), &mut scratch))
                .collect::<Vec<usize>>()
        });
        flatten_chunks(parts)
    }
}

/// N-gram frequency table keyed by token ids — the interned mirror of
/// [`crate::ngram::NgramCounts`]. Strings are resolved only in
/// [`IdNgramCounts::top_k`].
#[derive(Debug, Clone, Default)]
pub struct IdNgramCounts {
    uni: HashMap<u32, f64>,
    bi: HashMap<(u32, u32), f64>,
    documents: usize,
}

impl IdNgramCounts {
    /// Empty table.
    pub fn new() -> IdNgramCounts {
        IdNgramCounts::default()
    }

    /// Add one document's content-word unigrams with a weight. Mirrors
    /// [`crate::ngram::NgramCounts::add_weighted`]: non-positive weights
    /// are ignored, document order is accumulation order.
    pub fn add_unigrams(&mut self, corpus: &TokenCorpus, doc: usize, weight: f64) {
        if weight <= 0.0 {
            return;
        }
        self.documents += 1;
        let vocab = corpus.vocab();
        for &id in corpus.doc(doc) {
            if vocab.is_content(id) {
                *self.uni.entry(id).or_insert(0.0) += weight;
            }
        }
    }

    /// Add one document's consecutive content-word bigrams with a weight
    /// (mirrors [`crate::ngram::NgramCounts::add_bigrams_weighted`]).
    pub fn add_bigrams(&mut self, corpus: &TokenCorpus, doc: usize, weight: f64) {
        if weight <= 0.0 {
            return;
        }
        self.documents += 1;
        let vocab = corpus.vocab();
        let mut prev: Option<u32> = None;
        for &id in corpus.doc(doc) {
            if !vocab.is_content(id) {
                continue;
            }
            if let Some(p) = prev {
                *self.bi.entry((p, id)).or_insert(0.0) += weight;
            }
            prev = Some(id);
        }
    }

    /// Number of documents added.
    pub fn documents(&self) -> usize {
        self.documents
    }

    /// Number of distinct n-grams.
    pub fn distinct(&self) -> usize {
        self.uni.len() + self.bi.len()
    }

    /// Total weight of one unigram id.
    pub fn unigram_weight(&self, id: u32) -> f64 {
        self.uni.get(&id).copied().unwrap_or(0.0)
    }

    /// Iterate `(id, weight)` unigram pairs (unordered).
    pub fn iter_unigrams(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.uni.iter().map(|(&id, &w)| (id, w))
    }

    /// The `k` heaviest n-grams resolved to strings, heaviest first, ties
    /// broken alphabetically — byte-for-byte the ordering of
    /// [`crate::ngram::NgramCounts::top_k`] (bigrams render as
    /// `"first second"`).
    pub fn top_k(&self, vocab: &Vocab, k: usize) -> Vec<(String, f64)> {
        let mut entries: Vec<(String, f64)> = self
            .uni
            .iter()
            .map(|(&id, &w)| (vocab.word(id).to_string(), w))
            .chain(
                self.bi
                    .iter()
                    .map(|(&(a, b), &w)| (format!("{} {}", vocab.word(a), vocab.word(b)), w)),
            )
            .collect();
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        entries.truncate(k);
        entries
    }
}

/// Split `[0, len)` into up to `workers` contiguous near-equal ranges
/// (always at least one, possibly empty — same contract as the session
/// frame's chunker, re-stated here because `sentiment` sits below `usaas`
/// in the crate graph).
fn chunk_ranges(len: usize, workers: usize) -> Vec<Range<usize>> {
    let chunks = workers.max(1).min(len.max(1));
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let size = base + usize::from(c < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Fewest documents a chunk must hold before a thread spawn pays for
/// itself. Tokenizing is far more expensive per element than a column
/// push, so the floor sits well below the session frame's 4096-element
/// threshold.
const MIN_CHUNK_DOCS: usize = 512;

/// Chunks handed to each available core. One keeps every merge step a
/// straight chunk-order append; raising it only helps with work stealing,
/// which the scoped-spawn pool does not do.
const CHUNKS_PER_CORE: usize = 1;

/// Cores the OS will actually run us on, probed once.
fn available_cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Chunk count that keeps per-chunk work above [`MIN_CHUNK_DOCS`] and the
/// fan-out no wider than the cores that can actually run it. Any count
/// yields the same bytes (chunk-order vocab merge), so this only moves the
/// speed dial.
fn adaptive_chunks(len: usize, workers: usize) -> usize {
    workers
        .min(available_cores() * CHUNKS_PER_CORE)
        .min(len / MIN_CHUNK_DOCS)
        .max(1)
}

/// Map `f` over the chunk ranges of `[0, len)` on scoped worker threads,
/// returning per-chunk results in chunk order; a single chunk runs inline.
/// Re-raises the original panic of any worker that died.
///
/// `workers` is a ceiling, not a demand: small inputs collapse to a single
/// inline chunk and the fan-out never exceeds the machine's available
/// cores, so callers can pass their configured worker count unconditionally
/// without paying the parallel setup tax on small corpora. Results are
/// bit-identical for every worker count because chunks merge in order.
pub fn par_map_ranges<T, F>(len: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    par_map_on(chunk_ranges(len, adaptive_chunks(len, workers)), f)
}

/// [`par_map_ranges`] over explicit pre-split ranges — the spawn machinery
/// without the adaptive sizing, so tests can pin multi-chunk merge
/// behaviour regardless of the host's core count.
fn par_map_on<T, F>(ranges: Vec<Range<usize>>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(ranges.len(), || None);
    crossbeam::thread::scope(|scope| {
        for (slot, range) in slots.iter_mut().zip(ranges) {
            let f = &f;
            scope.spawn(move |_| {
                *slot = Some(f(range));
            });
        }
    })
    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
    slots
        .into_iter()
        .map(|slot| slot.expect("every chunk worker fills its slot"))
        .collect()
}

/// Concatenate per-chunk result vectors in chunk order.
pub fn flatten_chunks<T>(parts: Vec<Vec<T>>) -> Vec<T> {
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for part in parts {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::{content_words, tokenize};

    fn corpus_of(texts: &[&str], workers: usize) -> TokenCorpus {
        TokenCorpus::from_texts(texts, workers)
    }

    #[test]
    fn docs_resolve_to_the_string_tokenizer_output() {
        let texts = [
            "Another OUTAGE tonight, totally unusable!",
            "",
            "don't worry — speeds are great über Köln",
            "no internet no internet went down",
        ];
        let corpus = corpus_of(&texts, 2);
        assert_eq!(corpus.docs(), texts.len());
        for (i, text) in texts.iter().enumerate() {
            let expected = tokenize(text);
            assert_eq!(corpus.doc_words(i), expected, "doc {i}");
        }
        assert_eq!(
            corpus.total_tokens(),
            texts.iter().map(|t| tokenize(t).len()).sum()
        );
    }

    #[test]
    fn adaptive_split_falls_back_to_sequential_on_small_inputs() {
        let cap = available_cores() * CHUNKS_PER_CORE;
        assert_eq!(adaptive_chunks(0, 8), 1);
        assert_eq!(adaptive_chunks(MIN_CHUNK_DOCS - 1, 8), 1);
        assert_eq!(adaptive_chunks(2 * MIN_CHUNK_DOCS, 1), 1);
        assert_eq!(adaptive_chunks(64 * MIN_CHUNK_DOCS, 4), 4.min(cap));
        assert!(adaptive_chunks(usize::MAX, 1024) <= cap);
        // Never more chunks than the per-chunk floor allows.
        assert!(adaptive_chunks(3 * MIN_CHUNK_DOCS, 1024) <= 3);
    }

    #[test]
    fn forced_multi_chunk_merge_is_bit_identical_to_adaptive_build() {
        // Shared suffix vocabulary across chunk boundaries so the remap
        // path (chunk-local id != global id) is actually exercised.
        let texts: Vec<String> = (0..97)
            .map(|i| format!("doc {i} outage slow speeds überlastet {}", i % 7))
            .collect();
        let parts_of = |i: usize, emit: &mut dyn FnMut(&str)| emit(texts[i].as_ref());
        let adaptive = TokenCorpus::from_texts(&texts, 4);
        for chunks in [2, 5, 8] {
            let forced =
                TokenCorpus::from_chunks(par_map_on(chunk_ranges(texts.len(), chunks), |range| {
                    Chunk::build(range, &parts_of)
                }));
            assert_eq!(forced.tokens, adaptive.tokens, "chunks {chunks}");
            assert_eq!(forced.offsets, adaptive.offsets, "chunks {chunks}");
            assert_eq!(forced.vocab.words, adaptive.vocab.words, "chunks {chunks}");
        }
        // Extending via forced multi-chunk absorb matches the adaptive
        // extend and the cold rebuild.
        let split = 41;
        let mut forced_ext = TokenCorpus::from_texts(&texts[..split], 4);
        forced_ext.absorb_chunks(par_map_on(chunk_ranges(texts.len() - split, 3), |range| {
            Chunk::build(range, &|i, emit| emit(texts[split + i].as_ref()))
        }));
        assert_eq!(forced_ext.tokens, adaptive.tokens);
        assert_eq!(forced_ext.offsets, adaptive.offsets);
        assert_eq!(forced_ext.vocab.words, adaptive.vocab.words);
    }

    #[test]
    fn extending_a_corpus_is_bit_identical_to_rebuilding() {
        let texts: Vec<String> = (0..83)
            .map(|i| format!("outage {i} slow speeds down again überlastet {}", i % 5))
            .collect();
        let split = 31;
        for workers in [1, 4] {
            let mut extended = TokenCorpus::from_texts(&texts[..split], workers);
            extended.extend_with(texts.len() - split, workers, |i, emit| {
                emit(texts[split + i].as_ref())
            });
            extended.extend_with(0, workers, |_, _| {});
            let rebuilt = TokenCorpus::from_texts(&texts, workers);
            assert_eq!(extended.docs(), rebuilt.docs(), "workers {workers}");
            assert_eq!(extended.tokens, rebuilt.tokens, "workers {workers}");
            assert_eq!(extended.offsets, rebuilt.offsets, "workers {workers}");
            assert_eq!(
                extended.vocab.words, rebuilt.vocab.words,
                "workers {workers}"
            );
        }
        // Growing a default-constructed corpus also works (the append path
        // seeds the CSR sentinel itself).
        let mut from_empty = TokenCorpus::default();
        from_empty.extend_with(texts.len(), 2, |i, emit| emit(texts[i].as_ref()));
        let rebuilt = TokenCorpus::from_texts(&texts, 2);
        assert_eq!(from_empty.tokens, rebuilt.tokens);
        assert_eq!(from_empty.offsets, rebuilt.offsets);
        assert_eq!(from_empty.vocab.words, rebuilt.vocab.words);
    }

    #[test]
    fn worker_count_does_not_change_the_corpus() {
        let texts: Vec<String> = (0..97)
            .map(|i| format!("outage number {i} is down, speeds bad fast great {}", i % 7))
            .collect();
        let one = TokenCorpus::from_texts(&texts, 1);
        for workers in [2, 3, 8] {
            let par = TokenCorpus::from_texts(&texts, workers);
            assert_eq!(one.docs(), par.docs());
            assert_eq!(one.tokens, par.tokens, "workers {workers}");
            assert_eq!(one.offsets, par.offsets, "workers {workers}");
            assert_eq!(one.vocab.words, par.vocab.words, "workers {workers}");
        }
    }

    #[test]
    fn vocab_tables_mirror_the_lexicon() {
        let corpus = corpus_of(&["not very fast but the outage is packet garbage a"], 1);
        let vocab = corpus.vocab();
        let lex = Lexicon::global();
        for id in 0..vocab.len() as u32 {
            let word = vocab.word(id);
            assert_eq!(
                vocab.valence(id),
                lex.valence(word).unwrap_or(0.0),
                "valence of {word}"
            );
            assert_eq!(vocab.is_negator(id), lex.is_negator(word), "negator {word}");
            match lex.intensity(word) {
                Some(m) => assert_eq!(vocab.intensity(id), m),
                None => assert!(vocab.intensity(id).is_nan(), "intensity of {word}"),
            }
            assert_eq!(
                vocab.is_stopword(id),
                crate::tokenize::is_stopword(word),
                "stopword {word}"
            );
            assert_eq!(
                vocab.is_content(id),
                word.len() > 1 && !crate::tokenize::is_stopword(word),
                "content {word}"
            );
        }
        // "packet" carries valence 0 in the entry table and must read as
        // non-sentiment here exactly like Lexicon::valence's filter.
        let packet = vocab.id("packet").unwrap();
        assert_eq!(vocab.valence(packet), 0.0);
    }

    #[test]
    fn empty_corpus_and_empty_docs() {
        let empty = TokenCorpus::from_texts::<&str>(&[], 4);
        assert!(empty.is_empty());
        assert_eq!(empty.docs(), 0);
        assert_eq!(empty.total_tokens(), 0);
        let blank = corpus_of(&["", "   ", "word"], 4);
        assert_eq!(blank.docs(), 3);
        assert!(blank.doc(0).is_empty());
        assert!(blank.doc(1).is_empty());
        assert_eq!(blank.doc_words(2), vec!["word"]);
    }

    #[test]
    fn compiled_dict_counts_match_string_dict() {
        let dict = KeywordDictionary::outages();
        let texts = [
            "another outage, everything went down",
            "went down and still down",
            "no internet since noon, total blackout",
            "lovely sunny day",
            "",
        ];
        let corpus = corpus_of(&texts, 2);
        let compiled = CompiledDict::compile(&dict, corpus.vocab());
        for (i, text) in texts.iter().enumerate() {
            assert_eq!(
                compiled.count_ids(corpus.doc(i)),
                dict.count_matches(text),
                "doc {i}: {text:?}"
            );
        }
        let counts = compiled.count_corpus(&corpus, 3);
        assert_eq!(counts, vec![2, 2, 2, 0, 0]);
        assert_eq!(counts, compiled.count_corpus(&corpus, 1));
    }

    #[test]
    fn compiled_dict_drops_unmatchable_entries() {
        let mut dict = KeywordDictionary::empty();
        dict.add_unigram("borked");
        dict.add_unigram("neverseen");
        dict.add_bigram("dish", "dead");
        dict.add_bigram("ghost", "word");
        let corpus = corpus_of(&["my dish dead and borked"], 1);
        let compiled = CompiledDict::compile(&dict, corpus.vocab());
        assert_eq!(
            compiled.len(),
            2,
            "only entries present in the vocab compile"
        );
        assert!(!compiled.is_empty());
        assert_eq!(compiled.count_ids(corpus.doc(0)), 2);
        let empty = CompiledDict::compile(&KeywordDictionary::empty(), corpus.vocab());
        assert!(empty.is_empty());
        assert_eq!(empty.count_ids(corpus.doc(0)), 0);
    }

    #[test]
    fn id_ngram_counts_match_string_counts() {
        use crate::ngram::NgramCounts;
        let texts = [
            "the outage is an outage and the outage continues",
            "roaming works roaming enabled roaming enabled",
            "alpha alpha beta beta gamma",
        ];
        let corpus = corpus_of(&texts, 2);
        let mut by_str = NgramCounts::new();
        let mut by_id = IdNgramCounts::new();
        for (i, text) in texts.iter().enumerate() {
            let w = 1.0 + i as f64;
            by_str.add_weighted(text, w);
            by_id.add_unigrams(&corpus, i, w);
        }
        assert_eq!(by_id.documents(), by_str.documents());
        assert_eq!(by_id.distinct(), by_str.distinct());
        assert_eq!(by_id.top_k(corpus.vocab(), 100), by_str.top_k(100));
        // Bigrams too, including the content-word windowing.
        let mut bi_str = NgramCounts::new();
        let mut bi_id = IdNgramCounts::new();
        for (i, text) in texts.iter().enumerate() {
            bi_str.add_bigrams_weighted(text, 2.0);
            bi_id.add_bigrams(&corpus, i, 2.0);
        }
        assert_eq!(bi_id.top_k(corpus.vocab(), 100), bi_str.top_k(100));
        assert_eq!(
            by_id.unigram_weight(corpus.vocab().id("outage").unwrap()),
            by_str.count("outage")
        );
        // Non-positive weights are ignored by both.
        bi_id.add_bigrams(&corpus, 0, 0.0);
        by_id.add_unigrams(&corpus, 0, -1.0);
        assert_eq!(by_id.documents(), 3);
    }

    #[test]
    fn content_filter_matches_content_words() {
        let text = "The outage is really bad and I am not happy about it a b";
        let corpus = corpus_of(&[text], 1);
        let vocab = corpus.vocab();
        let filtered: Vec<&str> = corpus
            .doc(0)
            .iter()
            .filter(|&&id| vocab.is_content(id))
            .map(|&id| vocab.word(id))
            .collect();
        assert_eq!(filtered, content_words(text));
    }

    #[test]
    fn corpus_round_trips_bit_identically() {
        let texts: Vec<String> = (0..61)
            .map(|i| format!("outage {i} slow speeds down again überlastet {}", i % 5))
            .collect();
        let corpus = TokenCorpus::from_texts(&texts, 3);
        let mut w = serde::bin::Writer::new();
        corpus.encode_bin(&mut w);
        let bytes = w.into_bytes();
        let mut r = serde::bin::Reader::new(&bytes);
        let decoded = TokenCorpus::decode_bin(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(decoded.tokens, corpus.tokens);
        assert_eq!(decoded.offsets, corpus.offsets);
        assert_eq!(decoded.vocab.words, corpus.vocab.words);
        // The recompiled side tables equal the originals bit-for-bit
        // (NaN intensity sentinels included).
        assert_eq!(decoded.vocab.valence, corpus.vocab.valence);
        assert_eq!(
            decoded
                .vocab
                .intensity
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            corpus
                .vocab
                .intensity
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
        assert_eq!(decoded.vocab.flags, corpus.vocab.flags);
        // The empty corpus round-trips too.
        let mut w = serde::bin::Writer::new();
        TokenCorpus::default().encode_bin(&mut w);
        let bytes = w.into_bytes();
        let empty = TokenCorpus::decode_bin(&mut serde::bin::Reader::new(&bytes)).unwrap();
        // (`docs()` needs the CSR sentinel a default corpus lacks, so
        // compare fields directly.)
        assert!(empty.tokens.is_empty() && empty.offsets.is_empty() && empty.vocab.is_empty());
    }

    #[test]
    fn corrupt_corpus_bytes_are_rejected() {
        let corpus = TokenCorpus::from_texts(&["outage down again", "down once more"], 1);
        let mut w = serde::bin::Writer::new();
        corpus.encode_bin(&mut w);
        let good = w.into_bytes();
        // Any truncation errors instead of panicking.
        for cut in [0, 3, good.len() / 2, good.len() - 1] {
            assert!(
                TokenCorpus::decode_bin(&mut serde::bin::Reader::new(&good[..cut])).is_err(),
                "cut {cut}"
            );
        }
        // An out-of-range token id is structural corruption.
        let mut w = serde::bin::Writer::new();
        w.put_u64(1);
        w.put_str("word");
        w.put_u64(1);
        w.put_u32(7); // id 7 in a 1-word vocab
        w.put_u64(2);
        w.put_u32(0);
        w.put_u32(1);
        let bad = w.into_bytes();
        assert!(TokenCorpus::decode_bin(&mut serde::bin::Reader::new(&bad)).is_err());
    }

    #[test]
    fn build_with_parts_matches_joined_text() {
        let parts: Vec<[&str; 2]> = vec![
            ["Outage again?", "Anyone else down tonight"],
            ["", "body only"],
            ["title only", ""],
            ["ends mid", "word starts"],
        ];
        let corpus = TokenCorpus::build_with(parts.len(), 2, |i, emit| {
            emit(parts[i][0]);
            emit(parts[i][1]);
        });
        for (i, [title, body]) in parts.iter().enumerate() {
            let joined = format!("{title}\n{body}");
            assert_eq!(corpus.doc_words(i), tokenize(&joined), "doc {i}");
        }
    }
}
