//! # sentiment
//!
//! NLP substrate: the stand-in for Azure Cognitive Services sentiment
//! analysis, NLTK word clouds, the hand-built outage keyword dictionary, and
//! the web-news search used by the paper's §4 social-media pipeline.
//!
//! * [`analyzer`] — {positive, negative, neutral} scores summing to 1, with
//!   the paper's ≥ 0.7 strong-sentiment rule;
//! * [`ngram`] / [`wordcloud`] — stop-worded n-gram counting and ranked word
//!   clouds (Fig. 5b);
//! * [`corpus`] — the tokenize-once interned substrate ([`TokenCorpus`],
//!   [`Vocab`], ID-space lexicon/dictionary tables) the hot paths run on;
//! * [`keywords`] — the outage dictionary (Fig. 6);
//! * [`news`] — a dated headline index queried by top word-cloud unigrams
//!   (Fig. 5a annotations), which deliberately has **no** article for the
//!   2022-04-22 outage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod corpus;
pub mod keywords;
pub mod lexicon;
pub mod news;
pub mod ngram;
pub mod tokenize;
pub mod wordcloud;

pub use analyzer::{SentimentAnalyzer, SentimentScores, STRONG_THRESHOLD};
pub use corpus::{CompiledDict, IdNgramCounts, TokenCorpus, Vocab};
pub use keywords::KeywordDictionary;
pub use lexicon::Lexicon;
pub use news::{NewsArticle, NewsIndex};
pub use ngram::NgramCounts;
pub use wordcloud::{CloudWord, WordCloud};
