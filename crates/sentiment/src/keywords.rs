//! The outage keyword dictionary (Fig. 6).
//!
//! §4.1: *"we first built a dictionary (a manual tedious process at the
//! moment, scanning such posts and online articles on network outages) with
//! keywords related to outages and filtered the Reddit threads containing
//! them."* This module ships that dictionary (unigrams plus a few bigrams)
//! and a matcher that counts occurrences per text.

use crate::tokenize::tokenize;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Default outage-related unigrams.
pub const OUTAGE_UNIGRAMS: &[&str] = &[
    "outage",
    "outages",
    "down",
    "downtime",
    "offline",
    "disconnect",
    "disconnects",
    "disconnected",
    "disconnecting",
    "disconnections",
    "dropout",
    "dropouts",
    "unreachable",
    "interruption",
    "interruptions",
    "blackout",
    "obstructed",
    "nosignal",
    "degraded",
];

/// Default outage-related bigrams (matched on consecutive content tokens).
pub const OUTAGE_BIGRAMS: &[(&str, &str)] = &[
    ("no", "internet"),
    ("no", "connection"),
    ("no", "service"),
    ("no", "signal"),
    ("lost", "connection"),
    ("service", "interruption"),
    ("went", "down"),
    ("is", "down"),
    ("completely", "down"),
    ("keeps", "dropping"),
    ("cant", "connect"),
    ("cannot", "connect"),
    ("connection", "lost"),
];

/// A keyword dictionary with a match counter.
///
/// ```
/// use sentiment::keywords::KeywordDictionary;
/// let dict = KeywordDictionary::outages();
/// assert_eq!(dict.count_matches("another outage, everything went down"), 2);
/// assert!(!dict.matches("lovely sunny day"));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeywordDictionary {
    unigrams: HashSet<String>,
    bigrams: HashSet<(String, String)>,
}

impl KeywordDictionary {
    /// The built-in outage dictionary.
    pub fn outages() -> KeywordDictionary {
        KeywordDictionary {
            unigrams: OUTAGE_UNIGRAMS.iter().map(|s| s.to_string()).collect(),
            bigrams: OUTAGE_BIGRAMS
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
        }
    }

    /// An empty dictionary to be extended manually.
    pub fn empty() -> KeywordDictionary {
        KeywordDictionary {
            unigrams: HashSet::new(),
            bigrams: HashSet::new(),
        }
    }

    /// Add a unigram (lowercased).
    pub fn add_unigram(&mut self, word: &str) {
        self.unigrams.insert(word.to_lowercase());
    }

    /// Add a bigram (lowercased).
    pub fn add_bigram(&mut self, first: &str, second: &str) {
        self.bigrams
            .insert((first.to_lowercase(), second.to_lowercase()));
    }

    /// Number of entries (unigrams + bigrams).
    pub fn len(&self) -> usize {
        self.unigrams.len() + self.bigrams.len()
    }

    /// True when the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.unigrams.is_empty() && self.bigrams.is_empty()
    }

    /// Iterate the unigram entries (unordered) — used by
    /// [`crate::corpus::CompiledDict::compile`] to lower the dictionary
    /// into id space.
    pub fn unigrams(&self) -> impl Iterator<Item = &str> {
        self.unigrams.iter().map(String::as_str)
    }

    /// Iterate the bigram entries (unordered).
    pub fn bigrams(&self) -> impl Iterator<Item = (&str, &str)> {
        self.bigrams.iter().map(|(a, b)| (a.as_str(), b.as_str()))
    }

    /// Count keyword occurrences in `text`. Bigram matches do not double-count
    /// their component unigrams (a token participating in a matched bigram is
    /// consumed).
    pub fn count_matches(&self, text: &str) -> usize {
        let tokens = tokenize(text);
        let mut matches = 0usize;
        let mut consumed = vec![false; tokens.len()];
        for i in 0..tokens.len().saturating_sub(1) {
            let key = (tokens[i].clone(), tokens[i + 1].clone());
            if self.bigrams.contains(&key) {
                matches += 1;
                consumed[i] = true;
                consumed[i + 1] = true;
            }
        }
        for (i, tok) in tokens.iter().enumerate() {
            if !consumed[i] && self.unigrams.contains(tok) {
                matches += 1;
            }
        }
        matches
    }

    /// True when the text contains at least one keyword.
    pub fn matches(&self, text: &str) -> bool {
        self.count_matches(text) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_unigrams() {
        let d = KeywordDictionary::outages();
        assert_eq!(d.count_matches("another outage tonight, total outage"), 2);
        assert_eq!(d.count_matches("lovely sunny day"), 0);
        assert!(d.matches("service has been offline for hours"));
    }

    #[test]
    fn counts_bigrams_without_double_count() {
        let d = KeywordDictionary::outages();
        // "went down": one bigram match; "down" must not also count alone.
        assert_eq!(d.count_matches("everything went down at 9pm"), 1);
        // A separate "down" still counts.
        assert_eq!(d.count_matches("went down and still down"), 2);
    }

    #[test]
    fn case_insensitive() {
        let d = KeywordDictionary::outages();
        assert!(d.matches("OUTAGE Confirmed In Seattle"));
        assert!(d.matches("No Internet since noon"));
    }

    #[test]
    fn custom_entries() {
        let mut d = KeywordDictionary::empty();
        assert!(d.is_empty());
        d.add_unigram("Borked");
        d.add_bigram("Dish", "Dead");
        assert_eq!(d.len(), 2);
        assert!(d.matches("everything is borked"));
        assert!(d.matches("my dish dead again"));
        assert!(!d.matches("dish is fine"));
    }

    #[test]
    fn builtin_dictionary_nonempty() {
        let d = KeywordDictionary::outages();
        assert!(d.len() > 20);
        assert!(!d.is_empty());
    }
}
