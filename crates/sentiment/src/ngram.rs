//! N-gram counting over corpora — the NLTK substitute.
//!
//! §4.1: the pipeline generates per-day word clouds and takes the *top 3
//! unigrams* as search keywords. This module counts stop-word-filtered
//! unigrams and bigrams with optional per-document weights (the emerging-
//! topic miner weighs documents by upvotes + comments).

use crate::tokenize::content_words;
use std::collections::HashMap;

/// A frequency table of n-grams.
#[derive(Debug, Clone, Default)]
pub struct NgramCounts {
    counts: HashMap<String, f64>,
    documents: usize,
}

impl NgramCounts {
    /// Empty table.
    pub fn new() -> NgramCounts {
        NgramCounts::default()
    }

    /// Add a document's unigrams with weight 1.
    pub fn add_document(&mut self, text: &str) {
        self.add_weighted(text, 1.0);
    }

    /// Add a document's unigrams with a weight (e.g. upvotes).
    pub fn add_weighted(&mut self, text: &str, weight: f64) {
        if weight <= 0.0 {
            return;
        }
        self.documents += 1;
        for w in content_words(text) {
            *self.counts.entry(w).or_insert(0.0) += weight;
        }
    }

    /// Add a document's bigrams (joined with a space) with a weight.
    pub fn add_bigrams_weighted(&mut self, text: &str, weight: f64) {
        if weight <= 0.0 {
            return;
        }
        self.documents += 1;
        let words = content_words(text);
        for pair in words.windows(2) {
            *self
                .counts
                .entry(format!("{} {}", pair[0], pair[1]))
                .or_insert(0.0) += weight;
        }
    }

    /// Number of documents added.
    pub fn documents(&self) -> usize {
        self.documents
    }

    /// Total weight of one n-gram.
    pub fn count(&self, gram: &str) -> f64 {
        self.counts.get(gram).copied().unwrap_or(0.0)
    }

    /// Number of distinct n-grams.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The `k` heaviest n-grams, heaviest first; ties broken alphabetically
    /// for determinism.
    pub fn top_k(&self, k: usize) -> Vec<(String, f64)> {
        let mut entries: Vec<(String, f64)> =
            self.counts.iter().map(|(g, c)| (g.clone(), *c)).collect();
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        entries.truncate(k);
        entries
    }

    /// Iterate all `(gram, weight)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.counts.iter().map(|(g, c)| (g.as_str(), *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_unigrams_without_stopwords() {
        let mut c = NgramCounts::new();
        c.add_document("the outage is an outage and the outage continues");
        assert_eq!(c.count("outage"), 3.0);
        assert_eq!(c.count("the"), 0.0);
        assert_eq!(c.documents(), 1);
    }

    #[test]
    fn weights_apply() {
        let mut c = NgramCounts::new();
        c.add_weighted("roaming works", 10.0);
        c.add_weighted("roaming broken", 1.0);
        assert_eq!(c.count("roaming"), 11.0);
        assert_eq!(c.count("works"), 10.0);
        c.add_weighted("ignored", 0.0);
        assert_eq!(c.count("ignored"), 0.0);
    }

    #[test]
    fn top_k_ordering_and_ties() {
        let mut c = NgramCounts::new();
        c.add_document("alpha alpha beta beta gamma");
        let top = c.top_k(3);
        assert_eq!(top.len(), 3);
        // alpha and beta tie at 2; alphabetical order breaks the tie.
        assert_eq!(top[0].0, "alpha");
        assert_eq!(top[1].0, "beta");
        assert_eq!(top[2].0, "gamma");
        assert!(c.top_k(0).is_empty());
        assert_eq!(c.top_k(100).len(), c.distinct());
    }

    #[test]
    fn bigrams() {
        let mut c = NgramCounts::new();
        c.add_bigrams_weighted("roaming enabled roaming enabled", 2.0);
        assert_eq!(c.count("roaming enabled"), 4.0);
        assert_eq!(c.count("enabled roaming"), 2.0);
    }

    #[test]
    fn empty_document_is_harmless() {
        let mut c = NgramCounts::new();
        c.add_document("");
        assert_eq!(c.distinct(), 0);
        assert_eq!(c.documents(), 1);
    }
}
