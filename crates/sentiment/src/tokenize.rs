//! Tokenization and stop-words.
//!
//! The social pipeline (§4) runs three text operations: sentiment scoring,
//! word-cloud n-gram counting, and keyword matching. All three share this
//! tokenizer: lowercase, alphanumeric word extraction (apostrophes folded
//! away, hyphens split), plus an NLTK-style English stop-word list used by
//! the n-gram counters (the paper generates word clouds "using NLTK").

/// Streaming tokenizer core: calls `emit` once per lowercased word token of
/// `text`, reusing one scratch buffer — no per-token allocation. The
/// allocating [`tokenize`] and the interned [`crate::corpus`] builder both
/// sit on top of this, so they can never drift apart.
///
/// ASCII characters (the overwhelming majority of forum text) take a
/// single-byte `to_ascii_lowercase` push; only non-ASCII alphanumerics pay
/// for the full `char::to_lowercase` expansion (which may emit several
/// chars, e.g. 'İ' → "i̇"), keeping unicode behaviour identical to the
/// original char-by-char loop.
pub fn for_each_token(text: &str, mut emit: impl FnMut(&str)) {
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_ascii() {
            if ch.is_ascii_alphanumeric() {
                current.push(ch.to_ascii_lowercase());
            } else if ch == '\'' {
                // fold apostrophes away
            } else if !current.is_empty() {
                emit(&current);
                current.clear();
            }
        } else if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if ch == '’' {
            // fold apostrophes away
        } else if !current.is_empty() {
            emit(&current);
            current.clear();
        }
    }
    if !current.is_empty() {
        emit(&current);
    }
}

/// Lowercased word tokens of `text`. Splits on any non-alphanumeric
/// character except in-word apostrophes, which are dropped ("don't" →
/// "dont") so negator lookup stays simple.
pub fn tokenize(text: &str) -> Vec<String> {
    // English forum prose averages ~6 bytes per word incl. separator.
    let mut tokens = Vec::with_capacity(text.len() / 6 + 1);
    for_each_token(text, |tok| tokens.push(tok.to_string()));
    tokens
}

/// Split text into rough sentences (`.`, `!`, `?` and newlines).
pub fn sentences(text: &str) -> Vec<&str> {
    text.split(['.', '!', '?', '\n'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

/// English stop-words (NLTK-style core list plus forum filler).
pub const STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "arent",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "cant",
    "cannot",
    "could",
    "couldnt",
    "did",
    "didnt",
    "do",
    "does",
    "doesnt",
    "doing",
    "dont",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadnt",
    "has",
    "hasnt",
    "have",
    "havent",
    "having",
    "he",
    "hed",
    "hell",
    "hes",
    "her",
    "here",
    "heres",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "hows",
    "i",
    "id",
    "ill",
    "im",
    "ive",
    "if",
    "in",
    "into",
    "is",
    "isnt",
    "it",
    "its",
    "itself",
    "lets",
    "me",
    "more",
    "most",
    "mustnt",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "shant",
    "she",
    "shed",
    "shell",
    "shes",
    "should",
    "shouldnt",
    "so",
    "some",
    "such",
    "than",
    "that",
    "thats",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "theres",
    "these",
    "they",
    "theyd",
    "theyll",
    "theyre",
    "theyve",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "wasnt",
    "we",
    "wed",
    "well",
    "were",
    "weve",
    "werent",
    "what",
    "whats",
    "when",
    "whens",
    "where",
    "wheres",
    "which",
    "while",
    "who",
    "whos",
    "whom",
    "why",
    "whys",
    "with",
    "wont",
    "would",
    "wouldnt",
    "you",
    "youd",
    "youll",
    "youre",
    "youve",
    "your",
    "yours",
    "yourself",
    "yourselves",
    "just",
    "got",
    "get",
    "also",
    "really",
    "one",
    "will",
    "can",
    "like",
    "even",
    "still",
    "much",
    "now",
    "today",
    "day",
    "week",
    "month",
    "time",
    "thing",
    "things",
    "make",
    "makes",
    "made",
    "using",
    "use",
    "used",
    "since",
    "back",
    "going",
    "know",
    "see",
    "way",
    "lot",
    "anyone",
    "else",
    "new",
    "everyone",
    "keeps",
    "talking",
    "here",
    "right",
    "our",
    "ours",
];

/// True when `word` (already lowercased) is a stop-word.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok() || STOPWORDS.contains(&word)
}

/// Tokenize and drop stop-words and single characters — the content words
/// used by n-gram counting and word clouds.
pub fn content_words(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|w| w.len() > 1 && !is_stopword(w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenization() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(
            tokenize("speed-test 42Mbps"),
            vec!["speed", "test", "42mbps"]
        );
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("   \t\n "), Vec::<String>::new());
    }

    #[test]
    fn apostrophes_folded() {
        assert_eq!(tokenize("don't can't won’t"), vec!["dont", "cant", "wont"]);
    }

    #[test]
    fn unicode_safe() {
        let toks = tokenize("Starlink über Köln — naïve test");
        assert!(toks.contains(&"über".to_string()));
        assert!(toks.contains(&"köln".to_string()));
        assert!(toks.contains(&"naïve".to_string()));
    }

    /// The pre-fast-path tokenizer: `char::to_lowercase` for every
    /// character. The ASCII fast path must be behaviourally invisible.
    fn reference_tokenize(text: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        let mut current = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                current.extend(ch.to_lowercase());
            } else if ch == '\'' || ch == '’' {
            } else if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            tokens.push(current);
        }
        tokens
    }

    #[test]
    fn ascii_fast_path_matches_reference_on_mixed_case_unicode() {
        // Includes multi-char lowercase expansions ('İ' → "i̇", 'ẞ' → "ß"),
        // combining sequences, non-Latin scripts, emoji separators, and
        // mixed ASCII/unicode words.
        for text in [
            "İstanbul ÜBER Köln STRAẞE Große",
            "ΣΊΣΥΦΟΣ ΤΕΛΟΣ Άλφα",
            "МОСКВА Скорость ОТЛИЧНО",
            "Starlink İİ naïve-Test ÇOK İYİ",
            "mixed42ÜNITS 100Mbps ÄØÅ",
            "emoji🚀SPLIT Ünicode’s APOSTROPHE'S",
            "ＦＵＬＬＷＩＤＴＨ １２３ ﬀ ﬁ",
            "",
            "   \t\n ",
        ] {
            assert_eq!(tokenize(text), reference_tokenize(text), "input {text:?}");
        }
    }

    #[test]
    fn sentences_split() {
        let s = sentences("Great speeds! But the outage was bad. Right?");
        assert_eq!(s, vec!["Great speeds", "But the outage was bad", "Right"]);
        assert!(sentences("").is_empty());
    }

    #[test]
    fn stopwords_filtered() {
        let words = content_words("The outage is really bad and I am not happy about it");
        assert!(words.contains(&"outage".to_string()));
        assert!(words.contains(&"bad".to_string()));
        assert!(words.contains(&"happy".to_string()));
        assert!(!words.contains(&"the".to_string()));
        assert!(!words.contains(&"is".to_string()));
        assert!(!words.contains(&"i".to_string()));
    }

    #[test]
    fn single_chars_dropped() {
        assert!(content_words("a b c outage").contains(&"outage".to_string()));
        assert_eq!(content_words("a b c").len(), 0);
    }
}
