//! Word clouds (Fig. 5b).
//!
//! The paper generates a word cloud per day from all posts and reads off the
//! top unigrams ("the third most common word … is *outage*"). A
//! [`WordCloud`] is just a ranked, weight-normalised unigram table with a
//! plain-text renderer for reports.

use crate::corpus::{IdNgramCounts, TokenCorpus};
use crate::ngram::NgramCounts;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One entry of the cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudWord {
    /// The word.
    pub word: String,
    /// Raw weight (document-weighted frequency).
    pub weight: f64,
    /// Weight relative to the heaviest word (1.0 for the top word).
    pub relative: f64,
}

/// A ranked word cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WordCloud {
    /// Entries, heaviest first.
    pub words: Vec<CloudWord>,
}

impl WordCloud {
    /// Build a cloud from documents, keeping the `max_words` heaviest words.
    pub fn from_documents<'a>(
        docs: impl IntoIterator<Item = &'a str>,
        max_words: usize,
    ) -> WordCloud {
        let mut counts = NgramCounts::new();
        for d in docs {
            counts.add_document(d);
        }
        WordCloud::from_counts(&counts, max_words)
    }

    /// Build a cloud from a pre-populated (possibly weighted) table.
    pub fn from_counts(counts: &NgramCounts, max_words: usize) -> WordCloud {
        WordCloud::from_ranked(counts.top_k(max_words))
    }

    /// Build a cloud from a subset of corpus documents without touching the
    /// document strings: unigrams are counted by interned id and resolved
    /// back to words only for the final ranked table. Identical to
    /// [`WordCloud::from_documents`] over the same documents' text.
    pub fn from_corpus_docs(
        corpus: &TokenCorpus,
        docs: impl IntoIterator<Item = usize>,
        max_words: usize,
    ) -> WordCloud {
        let mut counts = IdNgramCounts::new();
        for doc in docs {
            counts.add_unigrams(corpus, doc, 1.0);
        }
        WordCloud::from_ranked(counts.top_k(corpus.vocab(), max_words))
    }

    /// Shared ranked-table → cloud construction (weights normalised to the
    /// heaviest entry).
    fn from_ranked(top: Vec<(String, f64)>) -> WordCloud {
        let max = top.first().map(|(_, c)| *c).unwrap_or(0.0);
        let words = top
            .into_iter()
            .map(|(word, weight)| CloudWord {
                relative: if max > 0.0 { weight / max } else { 0.0 },
                word,
                weight,
            })
            .collect();
        WordCloud { words }
    }

    /// The top-`k` words (the paper uses the top 3 as search keywords).
    pub fn top_words(&self, k: usize) -> Vec<&str> {
        self.words.iter().take(k).map(|w| w.word.as_str()).collect()
    }

    /// Rank of a word (0-based), if present.
    pub fn rank_of(&self, word: &str) -> Option<usize> {
        self.words.iter().position(|w| w.word == word)
    }

    /// True when the cloud has no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

impl fmt::Display for WordCloud {
    /// Plain-text rendering: one word per line, weight bar scaled to 40
    /// columns.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for w in &self.words {
            let bar_len = (w.relative * 40.0).round() as usize;
            writeln!(
                f,
                "{:>20} {:>8.1} {}",
                w.word,
                w.weight,
                "█".repeat(bar_len)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_by_frequency() {
        let docs = [
            "outage outage outage reported",
            "another outage reported tonight",
            "service restored after outage",
        ];
        let cloud = WordCloud::from_documents(docs.iter().copied(), 10);
        assert_eq!(cloud.top_words(1), vec!["outage"]);
        assert_eq!(cloud.rank_of("outage"), Some(0));
        assert_eq!(cloud.words[0].relative, 1.0);
        assert!(cloud.rank_of("reported").unwrap() <= 2);
        assert_eq!(cloud.rank_of("nonexistent"), None);
    }

    #[test]
    fn max_words_cap() {
        let cloud = WordCloud::from_documents(["alpha beta gamma delta epsilon"], 3);
        assert_eq!(cloud.words.len(), 3);
    }

    #[test]
    fn empty_corpus() {
        let cloud = WordCloud::from_documents(std::iter::empty(), 10);
        assert!(cloud.is_empty());
        assert!(cloud.top_words(3).is_empty());
        assert_eq!(cloud.to_string(), "");
    }

    #[test]
    fn render_contains_words() {
        let cloud = WordCloud::from_documents(["speed speed rocks"], 5);
        let s = cloud.to_string();
        assert!(s.contains("speed"));
        assert!(s.contains("rocks"));
    }
}
