//! A dated news-article index — the substitute for web search.
//!
//! §4.1's annotation pipeline searches online for the top word-cloud
//! unigrams ("with the search query appended with 'Starlink', for the custom
//! date") and ties sentiment peaks to the news that drove them. We embed an
//! index of real, dated headlines (all public, most cited by the paper
//! itself) and query it by keywords + date window.
//!
//! Deliberately, the index contains **no article for the 2022-04-22 outage**:
//! the paper's finding is precisely that Redditors in 14 countries confirmed
//! that outage while no news coverage existed.

use crate::tokenize::tokenize;
use analytics::time::Date;
use serde::{Deserialize, Serialize};

/// One indexed article.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NewsArticle {
    /// Publication date.
    pub date: Date,
    /// Headline.
    pub headline: String,
    /// Editorial keywords (lowercase).
    pub keywords: Vec<String>,
}

/// A searchable article index.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NewsIndex {
    articles: Vec<NewsArticle>,
}

fn art(y: i32, m: u8, d: u8, headline: &str, keywords: &[&str]) -> NewsArticle {
    NewsArticle {
        date: Date::from_ymd(y, m, d).expect("valid embedded date"),
        headline: headline.to_string(),
        keywords: keywords.iter().map(|k| k.to_string()).collect(),
    }
}

impl NewsIndex {
    /// The built-in index covering the Jan '21 – Dec '22 study window.
    pub fn builtin() -> NewsIndex {
        NewsIndex {
            articles: vec![
                art(2021, 2, 9,
                    "SpaceX begins accepting $99 preorders for its Starlink satellite internet service",
                    &["starlink", "preorder", "preorders", "order", "deposit", "available"]),
                art(2021, 8, 3,
                    "SpaceX says Starlink has about 90,000 users as the internet service gains subscribers",
                    &["starlink", "users", "subscribers", "growth"]),
                art(2021, 11, 24,
                    "Starlink disappoints pre-order customers by pushing back delivery times",
                    &["starlink", "delay", "delayed", "delivery", "preorder", "terminal", "email"]),
                art(2022, 1, 7,
                    "Starlink internet is experiencing worldwide service interruptions",
                    &["starlink", "outage", "interruption", "down", "worldwide"]),
                art(2022, 2, 15,
                    "SpaceX says a geomagnetic storm destroyed up to 40 new Starlink satellites",
                    &["starlink", "storm", "satellites", "launch", "lost"]),
                art(2022, 5, 2,
                    "Starlink becomes movable with new Portability option",
                    &["starlink", "portability", "roaming", "movable", "travel"]),
                art(2022, 8, 30,
                    "SpaceX's Starlink suffers global outage",
                    &["starlink", "outage", "global", "down"]),
                art(2022, 9, 19,
                    "Starlink has 700,000 subscribers worldwide",
                    &["starlink", "subscribers", "users", "growth"]),
                art(2022, 12, 19,
                    "SpaceX beats annual launch record as it preps more Starlink satellites",
                    &["starlink", "launch", "record", "satellites"]),
            ],
        }
    }

    /// Empty index.
    pub fn new() -> NewsIndex {
        NewsIndex::default()
    }

    /// Add an article.
    pub fn add(&mut self, article: NewsArticle) {
        self.articles.push(article);
    }

    /// Number of indexed articles.
    pub fn len(&self) -> usize {
        self.articles.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.articles.is_empty()
    }

    /// Search: articles within `window_days` of `date` matching at least one
    /// query keyword (against editorial keywords or headline tokens).
    /// Results are ordered by date distance, closest first. The query term
    /// "starlink" alone never matches (the paper always appends it; alone it
    /// would match everything).
    pub fn search(&self, keywords: &[&str], date: Date, window_days: i32) -> Vec<&NewsArticle> {
        let query: Vec<String> = keywords
            .iter()
            .map(|k| k.to_lowercase())
            .filter(|k| k != "starlink" && !k.is_empty())
            .collect();
        if query.is_empty() {
            return Vec::new();
        }
        let mut hits: Vec<&NewsArticle> = self
            .articles
            .iter()
            .filter(|a| (a.date.days_since(date)).abs() <= window_days)
            .filter(|a| {
                let headline_tokens = tokenize(&a.headline);
                query.iter().any(|q| {
                    a.keywords.iter().any(|k| k == q) || headline_tokens.iter().any(|t| t == q)
                })
            })
            .collect();
        hits.sort_by_key(|a| (a.date.days_since(date)).abs());
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    #[test]
    fn builtin_covers_known_events() {
        let idx = NewsIndex::builtin();
        assert!(idx.len() >= 8);
        let preorder = idx.search(&["preorder", "starlink"], d(2021, 2, 9), 3);
        assert!(!preorder.is_empty());
        assert!(preorder[0].headline.contains("preorders"));
        let delay = idx.search(&["delay", "delivery"], d(2021, 11, 24), 3);
        assert!(!delay.is_empty());
    }

    #[test]
    fn april_22_outage_is_unreported() {
        // The paper's headline finding: no press coverage of the Apr 22 '22
        // outage even though Redditors confirmed it.
        let idx = NewsIndex::builtin();
        let hits = idx.search(&["outage", "down", "starlink"], d(2022, 4, 22), 5);
        assert!(hits.is_empty(), "expected no coverage, got {hits:?}");
    }

    #[test]
    fn large_outages_are_reported() {
        let idx = NewsIndex::builtin();
        assert!(!idx.search(&["outage"], d(2022, 1, 7), 3).is_empty());
        assert!(!idx.search(&["outage"], d(2022, 8, 30), 3).is_empty());
    }

    #[test]
    fn window_respected_and_sorted() {
        let idx = NewsIndex::builtin();
        let far = idx.search(&["outage"], d(2022, 3, 1), 10);
        assert!(far.is_empty());
        let wide = idx.search(&["outage"], d(2022, 1, 15), 30);
        assert!(!wide.is_empty());
        assert_eq!(wide[0].date, d(2022, 1, 7));
    }

    #[test]
    fn starlink_alone_matches_nothing() {
        let idx = NewsIndex::builtin();
        assert!(idx.search(&["starlink"], d(2022, 1, 7), 5).is_empty());
        assert!(idx.search(&[], d(2022, 1, 7), 5).is_empty());
    }

    #[test]
    fn custom_index() {
        let mut idx = NewsIndex::new();
        assert!(idx.is_empty());
        idx.add(art(
            2022,
            6,
            1,
            "Local ISP melts down",
            &["isp", "meltdown"],
        ));
        assert_eq!(idx.len(), 1);
        assert!(!idx.search(&["meltdown"], d(2022, 6, 2), 3).is_empty());
    }
}
