//! The sentiment analyzer — our substitute for Azure Cognitive Services.
//!
//! §4.1 of the paper: *"The sentiment analysis service assigns three
//! different scores — positive, negative, and neutral — to each piece of
//! text, which add up to 1. We count the number of posts with strong positive
//! (≥ 0.7) or negative (≥ 0.7) scores per day."*
//!
//! [`SentimentAnalyzer::score`] reproduces that contract: valence lookup with
//! negation (a negator within the three preceding tokens flips and dampens)
//! and intensification (an immediately preceding intensifier scales), then
//! positive / negative / neutral mass normalisation so the three scores sum
//! to exactly 1.

use crate::corpus::{TokenCorpus, Vocab};
use crate::lexicon::Lexicon;
use crate::tokenize::tokenize;
use serde::{Deserialize, Serialize};

/// The strong-sentiment threshold the paper uses (≥ 0.7).
pub const STRONG_THRESHOLD: f64 = 0.7;

/// The three scores; invariant: they are each in `[0, 1]` and sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SentimentScores {
    /// Positive mass.
    pub positive: f64,
    /// Negative mass.
    pub negative: f64,
    /// Neutral mass.
    pub neutral: f64,
}

impl SentimentScores {
    /// All-neutral scores (empty or sentiment-free text).
    pub fn neutral() -> SentimentScores {
        SentimentScores {
            positive: 0.0,
            negative: 0.0,
            neutral: 1.0,
        }
    }

    /// Strong positive per the paper's ≥ 0.7 rule.
    pub fn is_strong_positive(&self) -> bool {
        self.positive >= STRONG_THRESHOLD
    }

    /// Strong negative per the paper's ≥ 0.7 rule.
    pub fn is_strong_negative(&self) -> bool {
        self.negative >= STRONG_THRESHOLD
    }

    /// Polarity in `[-1, 1]`: positive minus negative mass.
    pub fn polarity(&self) -> f64 {
        self.positive - self.negative
    }
}

/// Configurable analyzer.
///
/// ```
/// use sentiment::analyzer::SentimentAnalyzer;
/// let analyzer = SentimentAnalyzer::default();
/// let s = analyzer.score("absolutely terrible outage, completely unusable tonight");
/// assert!(s.is_strong_negative());
/// assert!((s.positive + s.negative + s.neutral - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SentimentAnalyzer {
    /// Neutral mass contributed per non-sentiment token; controls how much
    /// sentiment-word density a text needs before a score counts as strong.
    pub neutral_weight: f64,
    /// How many preceding tokens a negator can act across.
    pub negation_window: usize,
    /// Damping applied to a flipped valence (humans hedge: "not great" is
    /// milder than "bad").
    pub negation_damping: f64,
}

impl Default for SentimentAnalyzer {
    fn default() -> SentimentAnalyzer {
        SentimentAnalyzer {
            neutral_weight: 0.25,
            negation_window: 3,
            negation_damping: 0.75,
        }
    }
}

impl SentimentAnalyzer {
    /// Score a text. Empty / sentiment-free text is fully neutral.
    pub fn score(&self, text: &str) -> SentimentScores {
        let lex = Lexicon::global();
        let tokens = tokenize(text);
        if tokens.is_empty() {
            return SentimentScores::neutral();
        }
        let mut pos_mass = 0.0;
        let mut neg_mass = 0.0;
        let mut neutral_tokens = 0usize;
        for (i, tok) in tokens.iter().enumerate() {
            let Some(base) = lex.valence(tok) else {
                neutral_tokens += 1;
                continue;
            };
            // Intensifier directly before the word.
            let mut v = base;
            if i >= 1 {
                if let Some(mult) = lex.intensity(&tokens[i - 1]) {
                    v *= mult;
                }
            }
            // Negator within the window before the word.
            let window_start = i.saturating_sub(self.negation_window);
            if tokens[window_start..i].iter().any(|t| lex.is_negator(t)) {
                v = -v * self.negation_damping;
            }
            if v >= 0.0 {
                pos_mass += v;
            } else {
                neg_mass += -v;
            }
        }
        let neutral_mass = neutral_tokens as f64 * self.neutral_weight;
        let total = pos_mass + neg_mass + neutral_mass;
        if total <= 0.0 {
            return SentimentScores::neutral();
        }
        SentimentScores {
            positive: pos_mass / total,
            negative: neg_mass / total,
            neutral: neutral_mass / total,
        }
    }

    /// Score an already-tokenized document by interned ids — the zero-
    /// allocation mirror of [`SentimentAnalyzer::score`]. Every lexicon
    /// lookup becomes a vector index into the [`Vocab`]'s ID-space tables,
    /// and the accumulation order is identical token for token, so the
    /// result is bit-identical to scoring the original text.
    pub fn score_ids(&self, ids: &[u32], vocab: &Vocab) -> SentimentScores {
        if ids.is_empty() {
            return SentimentScores::neutral();
        }
        let mut pos_mass = 0.0;
        let mut neg_mass = 0.0;
        let mut neutral_tokens = 0usize;
        for (i, &id) in ids.iter().enumerate() {
            let base = vocab.valence(id);
            if base == 0.0 {
                neutral_tokens += 1;
                continue;
            }
            // Intensifier directly before the word (NaN = none).
            let mut v = base;
            if i >= 1 {
                let mult = vocab.intensity(ids[i - 1]);
                if !mult.is_nan() {
                    v *= mult;
                }
            }
            // Negator within the window before the word.
            let window_start = i.saturating_sub(self.negation_window);
            if ids[window_start..i].iter().any(|&t| vocab.is_negator(t)) {
                v = -v * self.negation_damping;
            }
            if v >= 0.0 {
                pos_mass += v;
            } else {
                neg_mass += -v;
            }
        }
        let neutral_mass = neutral_tokens as f64 * self.neutral_weight;
        let total = pos_mass + neg_mass + neutral_mass;
        if total <= 0.0 {
            return SentimentScores::neutral();
        }
        SentimentScores {
            positive: pos_mass / total,
            negative: neg_mass / total,
            neutral: neutral_mass / total,
        }
    }

    /// Score every document of a corpus, fanning contiguous document
    /// chunks out over up to `workers` scoped threads. Each document is
    /// scored independently, so the result vector is identical for every
    /// worker count.
    pub fn score_corpus(&self, corpus: &TokenCorpus, workers: usize) -> Vec<SentimentScores> {
        let vocab = corpus.vocab();
        let parts = crate::corpus::par_map_ranges(corpus.docs(), workers, |range| {
            range
                .map(|doc| self.score_ids(corpus.doc(doc), vocab))
                .collect::<Vec<SentimentScores>>()
        });
        crate::corpus::flatten_chunks(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn score(text: &str) -> SentimentScores {
        SentimentAnalyzer::default().score(text)
    }

    #[test]
    fn empty_and_neutral_text() {
        assert_eq!(score(""), SentimentScores::neutral());
        let s = score("the satellite dish arrived on tuesday in a cardboard box");
        assert!(s.neutral > 0.9, "{s:?}");
        assert!(!s.is_strong_positive() && !s.is_strong_negative());
    }

    #[test]
    fn clearly_positive_is_strong() {
        let s = score("Amazing speeds, super reliable, absolutely love this service!");
        assert!(s.is_strong_positive(), "{s:?}");
        assert!(s.polarity() > 0.6);
    }

    #[test]
    fn clearly_negative_is_strong() {
        let s = score("Terrible outage again, constant disconnects, totally unusable garbage.");
        assert!(s.is_strong_negative(), "{s:?}");
        assert!(s.polarity() < -0.6);
    }

    #[test]
    fn negation_flips_polarity() {
        let pos = score("the connection is fast and reliable");
        let neg = score("the connection is not fast and not reliable");
        assert!(pos.polarity() > 0.0);
        assert!(neg.polarity() < 0.0, "{neg:?}");
        // Damping: "not fast" is milder than "slow".
        let slow = score("the connection is slow and unreliable");
        assert!(neg.negative < slow.negative, "{neg:?} vs {slow:?}");
    }

    #[test]
    fn intensifiers_amplify() {
        let plain = score("download is slow");
        let strong = score("download is extremely slow");
        assert!(strong.negative > plain.negative, "{strong:?} vs {plain:?}");
        let damped = score("download is slightly slow");
        assert!(damped.negative < plain.negative, "{damped:?} vs {plain:?}");
    }

    #[test]
    fn mixed_text_not_strong() {
        let s = score("speeds are great but the nightly outage is terrible");
        assert!(!s.is_strong_positive());
        assert!(!s.is_strong_negative());
        assert!(s.positive > 0.1 && s.negative > 0.1, "{s:?}");
    }

    #[test]
    fn dilution_by_neutral_text() {
        let dense = score("awesome fast reliable");
        let diluted = score(
            "awesome fast reliable although the installation of the mounting bracket on the \
             north side of the roof took the technician most of the afternoon to complete",
        );
        assert!(dense.positive > diluted.positive);
        assert!(dense.is_strong_positive());
    }

    #[test]
    fn paper_threshold_constant() {
        assert_eq!(STRONG_THRESHOLD, 0.7);
    }

    proptest! {
        #[test]
        fn scores_always_sum_to_one(text in ".{0,400}") {
            let s = score(&text);
            prop_assert!((s.positive + s.negative + s.neutral - 1.0).abs() < 1e-9);
            for v in [s.positive, s.negative, s.neutral] {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
            }
        }

        #[test]
        fn polarity_bounded(text in ".{0,400}") {
            let p = score(&text).polarity();
            prop_assert!((-1.0..=1.0).contains(&p));
        }
    }
}
