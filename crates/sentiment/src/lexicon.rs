//! Valence lexicon: general sentiment words plus a networking-domain layer.
//!
//! The paper scores Reddit posts with Azure Cognitive Services; our
//! substitute is a transparent AFINN-style lexicon — each word carries an
//! integer valence in −4 … +4 — extended with the vocabulary that actually
//! appears on an ISP subreddit (outage, lag, buffering, uptime, …), plus
//! negator and intensifier word lists consumed by the analyzer.

use std::collections::HashMap;
use std::sync::OnceLock;

/// Valence entries: `(word, valence)` with valence in −4 … +4.
///
/// General English core (AFINN-style subset) followed by the
/// networking-domain layer.
pub const VALENCE_ENTRIES: &[(&str, i8)] = &[
    // --- general positive ---
    ("amazing", 4),
    ("awesome", 4),
    ("excellent", 4),
    ("fantastic", 4),
    ("incredible", 4),
    ("outstanding", 4),
    ("perfect", 4),
    ("stellar", 4),
    ("superb", 4),
    ("phenomenal", 4),
    ("great", 3),
    ("love", 3),
    ("loved", 3),
    ("loving", 3),
    ("wonderful", 3),
    ("delighted", 3),
    ("thrilled", 3),
    ("impressed", 3),
    ("impressive", 3),
    ("beautiful", 3),
    ("best", 3),
    ("happy", 3),
    ("glad", 3),
    ("excited", 3),
    ("exciting", 3),
    ("blazing", 3),
    ("good", 2),
    ("nice", 2),
    ("solid", 2),
    ("smooth", 2),
    ("pleased", 2),
    ("enjoy", 2),
    ("enjoying", 2),
    ("worth", 2),
    ("recommend", 2),
    ("recommended", 2),
    ("satisfied", 2),
    ("thanks", 2),
    ("thank", 2),
    ("helpful", 2),
    ("win", 2),
    ("winner", 2),
    ("better", 2),
    ("improved", 2),
    ("improvement", 2),
    ("improving", 2),
    ("upgrade", 2),
    ("upgraded", 2),
    ("works", 2),
    ("working", 2),
    ("worked", 2),
    ("fine", 1),
    ("ok", 1),
    ("okay", 1),
    ("decent", 1),
    ("usable", 1),
    ("acceptable", 1),
    ("stable", 2),
    ("reliable", 3),
    ("consistent", 2),
    ("fast", 3),
    ("faster", 3),
    ("fastest", 3),
    ("quick", 2),
    ("snappy", 3),
    ("flawless", 4),
    ("seamless", 3),
    ("responsive", 2),
    ("crisp", 2),
    ("happier", 3),
    // --- general negative ---
    ("terrible", -4),
    ("horrible", -4),
    ("awful", -4),
    ("unusable", -4),
    ("garbage", -4),
    ("trash", -4),
    ("worst", -4),
    ("abysmal", -4),
    ("atrocious", -4),
    ("unacceptable", -4),
    ("bad", -3),
    ("hate", -3),
    ("hated", -3),
    ("angry", -3),
    ("furious", -4),
    ("scam", -4),
    ("useless", -3),
    ("broken", -3),
    ("fail", -3),
    ("failed", -3),
    ("failing", -3),
    ("failure", -3),
    ("nightmare", -4),
    ("disaster", -4),
    ("ridiculous", -3),
    ("pathetic", -3),
    ("poor", -2),
    ("disappointed", -3),
    ("disappointing", -3),
    ("disappointment", -3),
    ("frustrated", -3),
    ("frustrating", -3),
    ("annoyed", -2),
    ("annoying", -2),
    ("upset", -2),
    ("sad", -2),
    ("unhappy", -3),
    ("regret", -3),
    ("refund", -2),
    ("cancel", -2),
    ("cancelled", -2),
    ("canceled", -2),
    ("cancelling", -2),
    ("complain", -2),
    ("complaint", -2),
    ("problem", -2),
    ("problems", -2),
    ("issue", -2),
    ("issues", -2),
    ("worse", -3),
    ("worthless", -4),
    ("slow", -3),
    ("slower", -3),
    ("slowest", -3),
    ("sluggish", -3),
    ("unstable", -3),
    ("unreliable", -3),
    ("inconsistent", -2),
    ("flaky", -3),
    ("spotty", -2),
    ("delayed", -2),
    ("delay", -2),
    ("delays", -2),
    ("waiting", -1),
    ("wait", -1),
    ("expensive", -2),
    ("overpriced", -3),
    ("joke", -3),
    ("mess", -3),
    ("crap", -3),
    // --- networking-domain layer ---
    ("outage", -3),
    ("outages", -3),
    ("down", -3),
    ("downtime", -3),
    ("offline", -3),
    ("disconnect", -3),
    ("disconnects", -3),
    ("disconnected", -3),
    ("disconnecting", -3),
    ("disconnections", -3),
    ("drop", -2),
    ("drops", -2),
    ("dropping", -3),
    ("dropped", -3),
    ("dropouts", -3),
    ("lag", -3),
    ("laggy", -3),
    ("lagging", -3),
    ("latency", -1),
    ("buffering", -3),
    ("stutter", -3),
    ("stuttering", -3),
    ("choppy", -3),
    ("frozen", -3),
    ("freezes", -3),
    ("freezing", -3),
    ("jitter", -2),
    ("packet", 0),
    ("obstruction", -2),
    ("obstructions", -2),
    ("interruption", -3),
    ("interruptions", -3),
    ("intermittent", -2),
    ("degraded", -3),
    ("congestion", -2),
    ("congested", -2),
    ("throttled", -3),
    ("throttling", -3),
    ("deprioritized", -2),
    ("capped", -2),
    ("unresponsive", -3),
    ("timeout", -2),
    ("timeouts", -2),
    ("uptime", 2),
    ("online", 1),
    ("connected", 1),
    ("restored", 2),
    ("resolved", 2),
    ("fixed", 2),
    ("gigabit", 2),
    ("lightning", 3),
    ("speedy", 3),
    ("lowlatency", 3),
    ("roaming", 1),
    ("portability", 1),
];

/// Negation words that flip the valence of the following sentiment word.
pub const NEGATORS: &[&str] = &[
    "not", "no", "never", "neither", "nobody", "none", "nothing", "nowhere", "hardly", "barely",
    "scarcely", "without", "cant", "cannot", "dont", "doesnt", "didnt", "wont", "wouldnt", "isnt",
    "arent", "wasnt", "werent", "havent", "hasnt", "hadnt", "shouldnt",
];

/// Intensifiers that scale the valence of the following sentiment word.
pub const INTENSIFIERS: &[(&str, f64)] = &[
    ("very", 1.4),
    ("extremely", 1.6),
    ("incredibly", 1.6),
    ("absolutely", 1.5),
    ("totally", 1.4),
    ("completely", 1.5),
    ("super", 1.4),
    ("so", 1.2),
    ("insanely", 1.6),
    ("really", 1.3),
    ("constantly", 1.4),
    ("always", 1.3),
    ("pretty", 1.1),
    ("quite", 1.1),
    ("somewhat", 0.7),
    ("slightly", 0.6),
    ("barely", 0.5),
    ("kinda", 0.8),
    ("kind", 0.8),
];

/// The compiled lexicon used by the analyzer.
#[derive(Debug)]
pub struct Lexicon {
    valence: HashMap<&'static str, f64>,
    negators: HashMap<&'static str, ()>,
    intensifiers: HashMap<&'static str, f64>,
}

impl Lexicon {
    fn build() -> Lexicon {
        Lexicon {
            valence: VALENCE_ENTRIES
                .iter()
                .map(|(w, v)| (*w, f64::from(*v)))
                .collect(),
            negators: NEGATORS.iter().map(|w| (*w, ())).collect(),
            intensifiers: INTENSIFIERS.iter().copied().collect(),
        }
    }

    /// Shared lexicon instance.
    pub fn global() -> &'static Lexicon {
        static LEX: OnceLock<Lexicon> = OnceLock::new();
        LEX.get_or_init(Lexicon::build)
    }

    /// Valence of a (lowercased) word, if it is a sentiment word.
    pub fn valence(&self, word: &str) -> Option<f64> {
        self.valence.get(word).copied().filter(|v| *v != 0.0)
    }

    /// Whether the word is a negator.
    pub fn is_negator(&self, word: &str) -> bool {
        self.negators.contains_key(word)
    }

    /// Intensifier multiplier of the word, if any.
    pub fn intensity(&self, word: &str) -> Option<f64> {
        self.intensifiers.get(word).copied()
    }

    /// Number of distinct sentiment words.
    pub fn len(&self) -> usize {
        self.valence.len()
    }

    /// Always false — the built-in lexicon is non-empty.
    pub fn is_empty(&self) -> bool {
        self.valence.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicon_builds_without_duplicates_losing_entries() {
        let lex = Lexicon::global();
        // The entry table may not contain duplicate words.
        let mut words: Vec<&str> = VALENCE_ENTRIES.iter().map(|(w, _)| *w).collect();
        let before = words.len();
        words.sort_unstable();
        words.dedup();
        assert_eq!(before, words.len(), "duplicate word in VALENCE_ENTRIES");
        // "packet" has valence 0 and is filtered by `valence()`.
        assert!(lex.len() >= before - 1);
    }

    #[test]
    fn domain_words_present() {
        let lex = Lexicon::global();
        assert!(lex.valence("outage").unwrap() < 0.0);
        assert!(lex.valence("buffering").unwrap() < 0.0);
        assert!(lex.valence("reliable").unwrap() > 0.0);
        assert!(lex.valence("fast").unwrap() > 0.0);
        assert_eq!(
            lex.valence("packet"),
            None,
            "zero-valence words are not sentiment words"
        );
        assert_eq!(lex.valence("satellite"), None);
    }

    #[test]
    fn negators_and_intensifiers() {
        let lex = Lexicon::global();
        assert!(lex.is_negator("not"));
        assert!(lex.is_negator("dont"));
        assert!(!lex.is_negator("fast"));
        assert!(lex.intensity("very").unwrap() > 1.0);
        assert!(lex.intensity("slightly").unwrap() < 1.0);
        assert_eq!(lex.intensity("outage"), None);
    }

    #[test]
    fn valences_in_documented_range() {
        for (w, v) in VALENCE_ENTRIES {
            assert!((-4..=4).contains(v), "{w} has out-of-range valence {v}");
        }
    }
}
