//! Descriptive statistics: mean, median, percentiles, variance.
//!
//! These mirror what the MS Teams client computes per session (§3.1 of the
//! paper): *"each client computes the mean, median, and 95th percentile (P95)
//! value for each of these metrics per session"*. [`Summary`] packages exactly
//! that triple (plus count/min/max) and is used by `netsim`'s client sampler.

use crate::error::AnalyticsError;
use serde::{Deserialize, Serialize};

/// Total-order comparator for **descending** rankings with NaNs sorted
/// last.
///
/// `partial_cmp(..).unwrap_or(Ordering::Equal)` is the classic NaN trap:
/// it is not a total order (NaN compares "equal" to everything), so a
/// single NaN score makes `sort_by` order-dependent — the same inputs can
/// rank differently across runs or slice layouts. This comparator is a
/// genuine total order built on [`f64::total_cmp`]: finite values (and
/// infinities) sort descending, every NaN — any payload, either sign —
/// sorts after all non-NaN values, and NaNs tie among themselves, so
/// rankings are deterministic regardless of NaN inputs.
pub fn desc_nan_last(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// Arithmetic mean. Errors on empty input.
pub fn mean(xs: &[f64]) -> Result<f64, AnalyticsError> {
    if xs.is_empty() {
        return Err(AnalyticsError::Empty);
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance. Errors on empty input.
pub fn variance(xs: &[f64]) -> Result<f64, AnalyticsError> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation. Errors on empty input.
pub fn stddev(xs: &[f64]) -> Result<f64, AnalyticsError> {
    variance(xs).map(f64::sqrt)
}

/// Median (interpolated for even-length inputs). Errors on empty input.
pub fn median(xs: &[f64]) -> Result<f64, AnalyticsError> {
    percentile(xs, 50.0)
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// Uses the "linear" (type 7 / NumPy default) definition: the `p`-th
/// percentile of a sorted sample `x_0..x_{n-1}` is `x_k + frac * (x_{k+1} -
/// x_k)` where `k + frac = p/100 * (n - 1)`.
pub fn percentile(xs: &[f64], p: f64) -> Result<f64, AnalyticsError> {
    if xs.is_empty() {
        return Err(AnalyticsError::Empty);
    }
    if !(0.0..=100.0).contains(&p) || p.is_nan() {
        return Err(AnalyticsError::InvalidParameter(
            "percentile must be in [0, 100]",
        ));
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Ok(percentile_sorted(&sorted, p))
}

/// Percentile of an already-sorted slice (no allocation, no validation of
/// sortedness). `p` must be in `[0, 100]`; the slice must be non-empty.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Winsorize a sample in place: clamp values below the `lo`-th percentile and
/// above the `hi`-th percentile to those percentile values. Used to tame
/// heavy-tailed synthetic telemetry before curve fitting.
pub fn winsorize(xs: &mut [f64], lo: f64, hi: f64) -> Result<(), AnalyticsError> {
    if xs.is_empty() {
        return Err(AnalyticsError::Empty);
    }
    if lo > hi {
        return Err(AnalyticsError::InvalidParameter("winsorize: lo > hi"));
    }
    let lo_v = percentile(xs, lo)?;
    let hi_v = percentile(xs, hi)?;
    for x in xs.iter_mut() {
        *x = x.clamp(lo_v, hi_v);
    }
    Ok(())
}

/// The per-session aggregate the conferencing client uploads: count, min,
/// mean, median, P95, max.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations aggregated.
    pub count: usize,
    /// Minimum observation.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Aggregate a sample. Errors on empty input.
    pub fn from_samples(xs: &[f64]) -> Result<Summary, AnalyticsError> {
        if xs.is_empty() {
            return Err(AnalyticsError::Empty);
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Ok(Summary {
            count: sorted.len(),
            min: sorted[0],
            mean: mean(xs)?,
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            max: sorted[sorted.len() - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_median_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs).unwrap(), 2.5);
        assert_eq!(median(&xs).unwrap(), 2.5);
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
    }

    #[test]
    fn empty_inputs_error() {
        assert_eq!(mean(&[]), Err(AnalyticsError::Empty));
        assert_eq!(median(&[]), Err(AnalyticsError::Empty));
        assert_eq!(variance(&[]), Err(AnalyticsError::Empty));
        assert!(Summary::from_samples(&[]).is_err());
    }

    #[test]
    fn percentile_bounds_and_interpolation() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0).unwrap(), 10.0);
        assert_eq!(percentile(&xs, 100.0).unwrap(), 50.0);
        assert_eq!(percentile(&xs, 50.0).unwrap(), 30.0);
        assert_eq!(percentile(&xs, 25.0).unwrap(), 20.0);
        assert!(percentile(&xs, 101.0).is_err());
        assert!(percentile(&xs, -0.1).is_err());
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[5.0; 10]).unwrap(), 0.0);
        assert_eq!(stddev(&[5.0; 10]).unwrap(), 0.0);
    }

    #[test]
    fn summary_matches_parts() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let s = Summary::from_samples(&xs).unwrap();
        assert_eq!(s.count, 8);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.mean, mean(&xs).unwrap());
        assert_eq!(s.median, median(&xs).unwrap());
        assert_eq!(s.p95, percentile(&xs, 95.0).unwrap());
    }

    #[test]
    fn desc_nan_last_is_total_and_sorts_nans_last() {
        let qnan = f64::NAN;
        let neg_nan = f64::from_bits(0xFFF8_0000_0000_0001);
        let payload_nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut xs = vec![
            1.0,
            qnan,
            3.0,
            neg_nan,
            f64::INFINITY,
            -0.0,
            payload_nan,
            -2.0,
        ];
        xs.sort_by(|a, b| desc_nan_last(*a, *b));
        // Non-NaN prefix is strictly descending; every NaN is at the tail.
        let non_nan: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
        assert_eq!(non_nan, vec![f64::INFINITY, 3.0, 1.0, -0.0, -2.0]);
        assert!(
            xs[5..].iter().all(|x| x.is_nan()),
            "NaNs must sort last: {xs:?}"
        );
        // Deterministic regardless of initial order (the partial_cmp trap).
        let mut ys = [
            neg_nan,
            -2.0,
            payload_nan,
            -0.0,
            f64::INFINITY,
            3.0,
            qnan,
            1.0,
        ];
        ys.sort_by(|a, b| desc_nan_last(*a, *b));
        assert_eq!(
            xs.iter().map(|x| x.is_nan()).collect::<Vec<_>>(),
            ys.iter().map(|x| x.is_nan()).collect::<Vec<_>>()
        );
        let ys_non_nan: Vec<f64> = ys.iter().copied().filter(|x| !x.is_nan()).collect();
        assert_eq!(non_nan, ys_non_nan);
    }

    #[test]
    fn winsorize_clamps_tails() {
        let mut xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        winsorize(&mut xs, 5.0, 95.0).unwrap();
        assert_eq!(xs.iter().cloned().fold(f64::INFINITY, f64::min), 5.0);
        assert_eq!(xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max), 95.0);
        assert!(winsorize(&mut xs, 90.0, 10.0).is_err());
    }

    proptest! {
        #[test]
        fn percentile_is_monotone_in_p(xs in prop::collection::vec(-1e6..1e6f64, 1..50),
                                       p1 in 0.0..100.0f64, p2 in 0.0..100.0f64) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let a = percentile(&xs, lo).unwrap();
            let b = percentile(&xs, hi).unwrap();
            prop_assert!(a <= b + 1e-9);
        }

        #[test]
        fn mean_within_min_max(xs in prop::collection::vec(-1e6..1e6f64, 1..50)) {
            let s = Summary::from_samples(&xs).unwrap();
            prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
            prop_assert!(s.min <= s.median && s.median <= s.max);
            prop_assert!(s.median <= s.p95 + 1e-9 && s.p95 <= s.max + 1e-9);
        }
    }
}
