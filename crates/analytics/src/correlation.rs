//! Correlation coefficients: Pearson, Spearman (tie-aware), Kendall's tau.
//!
//! §3.3 of the paper quantifies how well each engagement metric tracks MOS
//! ("Presence shows the strongest correlation with MOS"); `usaas::correlate`
//! ranks metrics by these coefficients.

use crate::error::AnalyticsError;

fn check_pair(xs: &[f64], ys: &[f64]) -> Result<(), AnalyticsError> {
    if xs.len() != ys.len() {
        return Err(AnalyticsError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(AnalyticsError::Empty);
    }
    Ok(())
}

/// Pearson product-moment correlation in `[-1, 1]`.
///
/// Returns an error for mismatched or <2-element inputs; returns 0 when
/// either series is constant (zero variance) — a pragmatic convention for
/// pipeline code that must not crash on degenerate strata.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, AnalyticsError> {
    check_pair(xs, ys)?;
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Ok(0.0);
    }
    Ok((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Average ranks (1-based), assigning tied values the mean of their ranks.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // ranks i+1 ..= j+1 tie; assign their mean.
        let rank = (i + 1 + j + 1) as f64 / 2.0;
        for k in i..=j {
            out[idx[k]] = rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (tie-aware: Pearson over average ranks).
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64, AnalyticsError> {
    check_pair(xs, ys)?;
    pearson(&ranks(xs), &ranks(ys))
}

/// Kendall's tau-b (tie-corrected), `O(n²)` — fine for the bin-level series
/// it is used on (tens of points).
pub fn kendall_tau(xs: &[f64], ys: &[f64]) -> Result<f64, AnalyticsError> {
    check_pair(xs, ys)?;
    let n = xs.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = xs[i] - xs[j];
            let dy = ys[i] - ys[j];
            if dx == 0.0 && dy == 0.0 {
                // tied in both; contributes to neither
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if dx * dy > 0.0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as f64;
    let denom = ((n0 - ties_x as f64) * (n0 - ties_y as f64)).sqrt();
    if denom == 0.0 {
        return Ok(0.0);
    }
    Ok(((concordant - discordant) as f64 / denom).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_linear_relationships() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_nonlinear_is_perfect_for_rank_measures() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| x.exp()).collect();
        let p = pearson(&xs, &ys).unwrap();
        assert!(p < 1.0 - 1e-6);
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_gives_zero() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        assert_eq!(pearson(&xs, &ys).unwrap(), 0.0);
        assert_eq!(spearman(&xs, &ys).unwrap(), 0.0);
        assert_eq!(kendall_tau(&xs, &ys).unwrap(), 0.0);
    }

    #[test]
    fn errors_on_bad_inputs() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(spearman(&[], &[]).is_err());
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r2 = ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r2, vec![2.0, 2.0, 2.0]);
    }

    proptest! {
        #[test]
        fn coefficients_bounded(xy in prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 2..40)) {
            let xs: Vec<f64> = xy.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = xy.iter().map(|p| p.1).collect();
            for f in [pearson, spearman, kendall_tau] {
                let c = f(&xs, &ys).unwrap();
                prop_assert!((-1.0..=1.0).contains(&c), "coefficient {c}");
            }
        }

        #[test]
        fn symmetry(xy in prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 2..30)) {
            let xs: Vec<f64> = xy.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = xy.iter().map(|p| p.1).collect();
            let a = pearson(&xs, &ys).unwrap();
            let b = pearson(&ys, &xs).unwrap();
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
