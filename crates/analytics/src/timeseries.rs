//! Daily time-series containers and peak detection.
//!
//! Fig. 5a of the paper finds "sentiment peaks" in daily strong-positive /
//! strong-negative post counts and annotates the top three; Fig. 6 finds
//! outage-keyword spikes. [`DailySeries`] holds a dense day-indexed series and
//! [`DailySeries::peaks`] implements a robust (median/MAD) z-score detector
//! with a refractory window so that one multi-day event registers as one peak.

use crate::descriptive::{median, percentile};
use crate::error::AnalyticsError;
use crate::time::Date;
use serde::{Deserialize, Serialize};

/// A dense series of one value per calendar day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailySeries {
    start: Date,
    values: Vec<f64>,
}

/// A detected peak: the day, its value, and its robust z-score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Peak {
    /// Day of the (local) maximum.
    pub date: Date,
    /// Series value at the peak.
    pub value: f64,
    /// Robust z-score of the peak vs. the whole series.
    pub score: f64,
}

impl DailySeries {
    /// A zero-filled series covering `start..=end`.
    pub fn zeros(start: Date, end: Date) -> Result<DailySeries, AnalyticsError> {
        if end < start {
            return Err(AnalyticsError::InvalidParameter("series end before start"));
        }
        let len = (end.days_since(start) + 1) as usize;
        Ok(DailySeries {
            start,
            values: vec![0.0; len],
        })
    }

    /// Build from explicit values starting at `start`.
    pub fn from_values(start: Date, values: Vec<f64>) -> Result<DailySeries, AnalyticsError> {
        if values.is_empty() {
            return Err(AnalyticsError::Empty);
        }
        Ok(DailySeries { start, values })
    }

    /// First day of the series.
    pub fn start(&self) -> Date {
        self.start
    }

    /// Last day of the series.
    pub fn end(&self) -> Date {
        self.start.offset(self.values.len() as i32 - 1)
    }

    /// Number of days covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series is empty (cannot normally happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at `date`, or `None` outside the covered range.
    pub fn get(&self, date: Date) -> Option<f64> {
        let off = date.days_since(self.start);
        if off < 0 {
            return None;
        }
        self.values.get(off as usize).copied()
    }

    /// Add `amount` at `date`; silently ignores out-of-range dates (callers
    /// accumulate events into a fixed study window).
    pub fn add(&mut self, date: Date, amount: f64) {
        let off = date.days_since(self.start);
        if off >= 0 {
            if let Some(v) = self.values.get_mut(off as usize) {
                *v += amount;
            }
        }
    }

    /// Raw values, one per day from [`DailySeries::start`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterate `(date, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Date, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, v)| (self.start.offset(i as i32), *v))
    }

    /// Centered moving average with the given odd window (edges use the
    /// available part of the window).
    pub fn moving_average(&self, window: usize) -> Result<DailySeries, AnalyticsError> {
        if window == 0 || window.is_multiple_of(2) {
            return Err(AnalyticsError::InvalidParameter(
                "window must be odd and > 0",
            ));
        }
        let half = window / 2;
        let n = self.values.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            let slice = &self.values[lo..hi];
            out.push(slice.iter().sum::<f64>() / slice.len() as f64);
        }
        Ok(DailySeries {
            start: self.start,
            values: out,
        })
    }

    /// Robust peak detection.
    ///
    /// A day is a peak candidate when its robust z-score
    /// `(x - median) / (1.4826 * MAD)` exceeds `min_score` and it is a local
    /// maximum. Candidates within `refractory_days` of a stronger candidate
    /// are suppressed, so a three-day outage thread storm yields one peak.
    /// Peaks are returned strongest-first.
    pub fn peaks(&self, min_score: f64, refractory_days: i32) -> Vec<Peak> {
        let med = match median(&self.values) {
            Ok(m) => m,
            Err(_) => return Vec::new(),
        };
        let abs_dev: Vec<f64> = self.values.iter().map(|v| (v - med).abs()).collect();
        let mad = median(&abs_dev).unwrap_or(0.0);
        // Fallback scale when over half the days are identical (MAD = 0):
        // use the 75th percentile of deviations, then an epsilon.
        let scale = if mad > 0.0 {
            1.4826 * mad
        } else {
            let p75 = percentile(&abs_dev, 75.0).unwrap_or(0.0);
            if p75 > 0.0 {
                p75
            } else {
                1.0
            }
        };
        let n = self.values.len();
        let mut candidates: Vec<Peak> = (0..n)
            .filter(|&i| {
                let v = self.values[i];
                let left = if i == 0 {
                    f64::NEG_INFINITY
                } else {
                    self.values[i - 1]
                };
                let right = if i + 1 == n {
                    f64::NEG_INFINITY
                } else {
                    self.values[i + 1]
                };
                v >= left && v >= right
            })
            .map(|i| Peak {
                date: self.start.offset(i as i32),
                value: self.values[i],
                score: (self.values[i] - med) / scale,
            })
            .filter(|p| p.score >= min_score)
            .collect();
        candidates.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut kept: Vec<Peak> = Vec::new();
        for c in candidates {
            if kept
                .iter()
                .all(|k| (c.date.days_since(k.date)).abs() > refractory_days)
            {
                kept.push(c);
            }
        }
        kept
    }

    /// Zero-padded copy of the series covering the wider window
    /// `start..=end` — the range-extension step of incremental view
    /// maintenance, where appended posts can widen the forum's date range.
    ///
    /// Requires `start <= self.start()` and `end >= self.end()`. Per-day
    /// values are copied verbatim (each day's accumulated sum is
    /// independent of the window width), so embedding then continuing to
    /// [`DailySeries::add`] in post order is bit-identical to building the
    /// wide series from scratch over the same events.
    pub fn embedded(&self, start: Date, end: Date) -> Result<DailySeries, AnalyticsError> {
        if start > self.start || end < self.end() {
            return Err(AnalyticsError::InvalidParameter(
                "embedded window must contain the series range",
            ));
        }
        let mut out = DailySeries::zeros(start, end)?;
        let off = self.start.days_since(start) as usize;
        out.values[off..off + self.values.len()].copy_from_slice(&self.values);
        Ok(out)
    }

    /// Sum of values over `lo..=hi` clipped to the covered range.
    pub fn window_sum(&self, lo: Date, hi: Date) -> f64 {
        if hi < lo {
            return 0.0;
        }
        lo.iter_through(hi).filter_map(|d| self.get(d)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    fn base_series() -> DailySeries {
        let start = d(2022, 1, 1);
        let end = d(2022, 3, 31);
        let mut s = DailySeries::zeros(start, end).unwrap();
        for (i, date) in start.iter_through(end).enumerate() {
            s.add(date, 10.0 + (i % 3) as f64); // humdrum baseline 10..12
        }
        s
    }

    #[test]
    fn construction_and_indexing() {
        let s = base_series();
        assert_eq!(s.len(), 90);
        assert_eq!(s.start(), d(2022, 1, 1));
        assert_eq!(s.end(), d(2022, 3, 31));
        assert_eq!(s.get(d(2022, 1, 1)), Some(10.0));
        assert_eq!(s.get(d(2021, 12, 31)), None);
        assert_eq!(s.get(d(2022, 4, 1)), None);
        assert!(!s.is_empty());
    }

    #[test]
    fn add_out_of_range_is_ignored() {
        let mut s = base_series();
        s.add(d(2023, 1, 1), 100.0);
        s.add(d(2020, 1, 1), 100.0);
        assert_eq!(
            s.values().iter().sum::<f64>(),
            base_series().values().iter().sum::<f64>()
        );
    }

    #[test]
    fn single_spike_is_top_peak() {
        let mut s = base_series();
        s.add(d(2022, 1, 7), 200.0);
        let peaks = s.peaks(5.0, 3);
        assert!(!peaks.is_empty());
        assert_eq!(peaks[0].date, d(2022, 1, 7));
        assert!(peaks[0].value > 200.0);
    }

    #[test]
    fn refractory_merges_multiday_event() {
        let mut s = base_series();
        // A three-day storm.
        s.add(d(2022, 2, 9), 150.0);
        s.add(d(2022, 2, 10), 180.0);
        s.add(d(2022, 2, 11), 120.0);
        let peaks = s.peaks(5.0, 3);
        let feb_peaks: Vec<&Peak> = peaks
            .iter()
            .filter(|p| p.date.month() == crate::time::Month::new(2022, 2).unwrap())
            .collect();
        assert_eq!(
            feb_peaks.len(),
            1,
            "storm should collapse to one peak: {feb_peaks:?}"
        );
        assert_eq!(feb_peaks[0].date, d(2022, 2, 10));
    }

    #[test]
    fn peaks_ranked_by_score() {
        let mut s = base_series();
        s.add(d(2022, 1, 10), 100.0);
        s.add(d(2022, 2, 10), 300.0);
        s.add(d(2022, 3, 10), 200.0);
        let peaks = s.peaks(5.0, 3);
        assert!(peaks.len() >= 3);
        assert_eq!(peaks[0].date, d(2022, 2, 10));
        assert_eq!(peaks[1].date, d(2022, 3, 10));
        assert_eq!(peaks[2].date, d(2022, 1, 10));
    }

    #[test]
    fn quiet_series_has_no_big_peaks() {
        let s = base_series();
        assert!(s.peaks(5.0, 3).is_empty());
    }

    #[test]
    fn moving_average_smooths() {
        let mut s = base_series();
        s.add(d(2022, 2, 10), 90.0);
        let sm = s.moving_average(7).unwrap();
        let raw = s.get(d(2022, 2, 10)).unwrap();
        let smoothed = sm.get(d(2022, 2, 10)).unwrap();
        assert!(smoothed < raw);
        assert!(smoothed > s.get(d(2022, 2, 1)).unwrap());
        assert!(s.moving_average(4).is_err());
        assert!(s.moving_average(0).is_err());
    }

    #[test]
    fn window_sum_clips() {
        let s = base_series();
        let total: f64 = s.values().iter().sum();
        assert_eq!(s.window_sum(d(2021, 1, 1), d(2023, 1, 1)), total);
        assert_eq!(s.window_sum(d(2022, 2, 1), d(2022, 1, 1)), 0.0);
        let one = s.window_sum(d(2022, 1, 1), d(2022, 1, 1));
        assert_eq!(one, 10.0);
    }

    #[test]
    fn invalid_constructors() {
        assert!(DailySeries::zeros(d(2022, 1, 2), d(2022, 1, 1)).is_err());
        assert!(DailySeries::from_values(d(2022, 1, 1), vec![]).is_err());
    }

    #[test]
    fn embedded_zero_pads_and_preserves_values() {
        let s = base_series();
        let wide = s.embedded(d(2021, 12, 25), d(2022, 4, 5)).unwrap();
        assert_eq!(wide.start(), d(2021, 12, 25));
        assert_eq!(wide.end(), d(2022, 4, 5));
        assert_eq!(wide.get(d(2021, 12, 31)), Some(0.0));
        assert_eq!(wide.get(d(2022, 4, 1)), Some(0.0));
        for (date, v) in s.iter() {
            assert_eq!(wide.get(date), Some(v));
        }
        // Same-range embed is the identity.
        assert_eq!(s.embedded(s.start(), s.end()).unwrap(), s);
        // A window that does not contain the series range is rejected.
        assert!(s.embedded(d(2022, 1, 2), d(2022, 4, 5)).is_err());
        assert!(s.embedded(d(2021, 12, 25), d(2022, 3, 30)).is_err());
    }

    #[test]
    fn mad_zero_fallback_does_not_panic() {
        // Constant series with one spike: MAD is 0, fallback kicks in.
        let start = d(2022, 1, 1);
        let mut vals = vec![5.0; 60];
        vals[30] = 500.0;
        let s = DailySeries::from_values(start, vals).unwrap();
        let peaks = s.peaks(3.0, 2);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].date, start.offset(30));
    }
}
