//! Error type shared by the analytics primitives.

use std::fmt;

/// Errors produced by analytics primitives.
///
/// All analytics APIs that can fail (empty inputs, mismatched lengths,
/// singular systems, …) return `Result<_, AnalyticsError>` rather than
/// panicking, so callers in long-running pipelines can degrade gracefully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyticsError {
    /// An operation that requires at least one observation got none.
    Empty,
    /// Two paired slices had different lengths.
    LengthMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
    /// A parameter was outside its valid domain (e.g. percentile > 100).
    InvalidParameter(&'static str),
    /// A linear system was singular / not solvable.
    Singular,
    /// A date did not correspond to a real calendar day.
    InvalidDate {
        /// Requested year.
        year: i32,
        /// Requested month (1–12).
        month: u8,
        /// Requested day of month.
        day: u8,
    },
    /// Iterative fitting failed to converge.
    NoConvergence,
    /// An operation needed more observations than it got (e.g. a sample
    /// variance over fewer than two points).
    InsufficientData {
        /// Minimum observations the operation needs.
        needed: usize,
        /// Observations actually provided.
        got: usize,
    },
}

impl fmt::Display for AnalyticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyticsError::Empty => write!(f, "empty input"),
            AnalyticsError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            AnalyticsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            AnalyticsError::Singular => write!(f, "singular system"),
            AnalyticsError::InvalidDate { year, month, day } => {
                write!(f, "invalid date: {year:04}-{month:02}-{day:02}")
            }
            AnalyticsError::NoConvergence => write!(f, "iterative fit did not converge"),
            AnalyticsError::InsufficientData { needed, got } => {
                write!(f, "insufficient data: needed {needed}, got {got}")
            }
        }
    }
}

impl std::error::Error for AnalyticsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(AnalyticsError::Empty.to_string(), "empty input");
        assert_eq!(
            AnalyticsError::LengthMismatch { left: 3, right: 4 }.to_string(),
            "length mismatch: 3 vs 4"
        );
        assert_eq!(
            AnalyticsError::InvalidDate {
                year: 2022,
                month: 2,
                day: 30
            }
            .to_string(),
            "invalid date: 2022-02-30"
        );
        assert_eq!(
            AnalyticsError::InsufficientData { needed: 2, got: 1 }.to_string(),
            "insufficient data: needed 2, got 1"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<AnalyticsError>();
    }
}
