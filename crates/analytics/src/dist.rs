//! Random-distribution samplers on top of `rand`.
//!
//! The approved offline crate set includes `rand` but not `rand_distr`, so the
//! handful of distributions the simulators need — Normal, LogNormal,
//! Exponential, Poisson, Pareto, Triangular, Bernoulli mixtures — are
//! implemented here. All samplers are driven by any [`rand::Rng`], so the
//! whole workspace stays deterministic under seeded [`rand::rngs::StdRng`].

use crate::error::AnalyticsError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Something that can draw `f64` samples from an RNG.
pub trait Sampler {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draw `n` samples into a vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// A parameterised distribution over `f64`.
///
/// The enum form (instead of one type per distribution) lets domain crates
/// store heterogeneous marginals — e.g. `netsim`'s per-access-type latency,
/// loss, jitter, and bandwidth distributions — in plain config structs that
/// serialize cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Point mass at a value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Gaussian with the given mean and standard deviation.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation (must be ≥ 0).
        std: f64,
    },
    /// Log-normal: `exp(N(mu, sigma))` where `mu`/`sigma` act on the log scale.
    LogNormal {
        /// Mean of the underlying normal (log scale).
        mu: f64,
        /// Std of the underlying normal (log scale).
        sigma: f64,
    },
    /// Exponential with rate `lambda` (mean `1/lambda`).
    Exponential {
        /// Rate parameter (must be > 0).
        lambda: f64,
    },
    /// Pareto (heavy tail) with scale `xm > 0` and shape `alpha > 0`.
    Pareto {
        /// Scale (minimum value).
        xm: f64,
        /// Tail index; smaller = heavier tail.
        alpha: f64,
    },
    /// Triangular on `[lo, hi]` with the given mode.
    Triangular {
        /// Lower bound.
        lo: f64,
        /// Mode.
        mode: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl Dist {
    /// Validate parameters, returning the distribution if they are sane.
    pub fn validated(self) -> Result<Dist, AnalyticsError> {
        let ok = match self {
            Dist::Constant(v) => v.is_finite(),
            Dist::Uniform { lo, hi } => lo.is_finite() && hi.is_finite() && lo < hi,
            Dist::Normal { mean, std } => mean.is_finite() && std.is_finite() && std >= 0.0,
            Dist::LogNormal { mu, sigma } => mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            Dist::Exponential { lambda } => lambda.is_finite() && lambda > 0.0,
            Dist::Pareto { xm, alpha } => xm > 0.0 && alpha > 0.0,
            Dist::Triangular { lo, mode, hi } => lo <= mode && mode <= hi && lo < hi,
        };
        if ok {
            Ok(self)
        } else {
            Err(AnalyticsError::InvalidParameter("distribution parameters"))
        }
    }

    /// A log-normal parameterised by its *actual* median and a multiplicative
    /// spread factor `sigma_mult` (> 1); e.g. `median=90, sigma_mult=1.4`
    /// gives a distribution whose log-std is `ln(1.4)`.
    pub fn log_normal_median(median: f64, sigma_mult: f64) -> Dist {
        Dist::LogNormal {
            mu: median.ln(),
            sigma: sigma_mult.ln(),
        }
    }

    /// Theoretical mean of the distribution (for sanity checks in tests;
    /// `Pareto` with `alpha <= 1` has infinite mean and returns `f64::INFINITY`).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Normal { mean, .. } => mean,
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Dist::Exponential { lambda } => 1.0 / lambda,
            Dist::Pareto { xm, alpha } => {
                if alpha <= 1.0 {
                    f64::INFINITY
                } else {
                    alpha * xm / (alpha - 1.0)
                }
            }
            Dist::Triangular { lo, mode, hi } => (lo + mode + hi) / 3.0,
        }
    }
}

impl Sampler for Dist {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => rng.gen_range(lo..hi),
            Dist::Normal { mean, std } => mean + std * standard_normal(rng),
            Dist::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
            Dist::Exponential { lambda } => {
                // Inverse CDF; 1 - U avoids ln(0).
                let u: f64 = rng.gen::<f64>();
                -(1.0 - u).ln() / lambda
            }
            Dist::Pareto { xm, alpha } => {
                let u: f64 = rng.gen::<f64>();
                xm / (1.0 - u).powf(1.0 / alpha)
            }
            Dist::Triangular { lo, mode, hi } => {
                let u: f64 = rng.gen::<f64>();
                let fc = (mode - lo) / (hi - lo);
                if u < fc {
                    lo + ((hi - lo) * (mode - lo) * u).sqrt()
                } else {
                    hi - ((hi - lo) * (hi - mode) * (1.0 - u)).sqrt()
                }
            }
        }
    }
}

/// One standard-normal draw via Box–Muller (polar form is not needed; the
/// trig form is branch-free and fine for simulation workloads).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE); // avoid ln(0)
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Poisson draw with mean `lambda`.
///
/// Knuth's product method for `lambda < 30`; normal approximation (rounded,
/// clamped at zero) above — the simulators only need Poisson counts for
/// daily post volumes where either regime occurs.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = lambda + lambda.sqrt() * standard_normal(rng);
        x.round().max(0.0) as u64
    }
}

/// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p.clamp(0.0, 1.0)
}

/// Weighted choice over indices: returns `i` with probability
/// `weights[i] / sum(weights)`. Returns `None` if weights are empty or all zero.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if *w > 0.0 && w.is_finite() {
            target -= w;
            if target <= 0.0 {
                return Some(i);
            }
        }
    }
    // Floating-point slack: return the last positive-weight index.
    weights.iter().rposition(|w| *w > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::mean as sample_mean;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_sample_mean_close() {
        let mut r = rng();
        let d = Dist::Normal {
            mean: 10.0,
            std: 2.0,
        };
        let xs = d.sample_n(&mut r, 20_000);
        let m = sample_mean(&xs).unwrap();
        assert!((m - 10.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn lognormal_median_parameterisation() {
        let mut r = rng();
        let d = Dist::log_normal_median(90.0, 1.4);
        let mut xs = d.sample_n(&mut r, 20_000);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med - 90.0).abs() / 90.0 < 0.05, "median {med}");
        assert!(xs.iter().all(|x| *x > 0.0));
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = rng();
        let d = Dist::Exponential { lambda: 0.5 };
        let xs = d.sample_n(&mut r, 20_000);
        let m = sample_mean(&xs).unwrap();
        assert!((m - 2.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn uniform_within_bounds() {
        let mut r = rng();
        let d = Dist::Uniform { lo: 3.0, hi: 4.0 };
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((3.0..4.0).contains(&x));
        }
    }

    #[test]
    fn triangular_within_bounds_and_mode_heavy() {
        let mut r = rng();
        let d = Dist::Triangular {
            lo: 0.0,
            mode: 1.0,
            hi: 10.0,
        };
        let xs = d.sample_n(&mut r, 10_000);
        assert!(xs.iter().all(|x| (0.0..=10.0).contains(x)));
        let m = sample_mean(&xs).unwrap();
        assert!((m - d.mean()).abs() < 0.2, "mean {m} vs {}", d.mean());
    }

    #[test]
    fn pareto_heavy_tail() {
        let mut r = rng();
        let d = Dist::Pareto {
            xm: 1.0,
            alpha: 2.0,
        };
        let xs = d.sample_n(&mut r, 20_000);
        assert!(xs.iter().all(|x| *x >= 1.0));
        let m = sample_mean(&xs).unwrap();
        assert!((m - 2.0).abs() < 0.3, "mean {m}");
        assert!(Dist::Pareto {
            xm: 1.0,
            alpha: 0.9
        }
        .mean()
        .is_infinite());
    }

    #[test]
    fn poisson_mean_close() {
        let mut r = rng();
        for lambda in [0.5, 5.0, 53.0] {
            let xs: Vec<f64> = (0..20_000)
                .map(|_| poisson(&mut r, lambda) as f64)
                .collect();
            let m = sample_mean(&xs).unwrap();
            assert!(
                (m - lambda).abs() / lambda.max(1.0) < 0.07,
                "lambda {lambda} mean {m}"
            );
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
        assert_eq!(poisson(&mut r, -3.0), 0);
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = rng();
        let hits = (0..20_000).filter(|_| bernoulli(&mut r, 0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!bernoulli(&mut r, 0.0));
        assert!(bernoulli(&mut r, 1.0));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&mut r, &w).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
        assert_eq!(weighted_index(&mut r, &[]), None);
        assert_eq!(weighted_index(&mut r, &[0.0, 0.0]), None);
    }

    #[test]
    fn validation_rejects_bad_params() {
        assert!(Dist::Uniform { lo: 2.0, hi: 1.0 }.validated().is_err());
        assert!(Dist::Normal {
            mean: 0.0,
            std: -1.0
        }
        .validated()
        .is_err());
        assert!(Dist::Exponential { lambda: 0.0 }.validated().is_err());
        assert!(Dist::Pareto {
            xm: 0.0,
            alpha: 1.0
        }
        .validated()
        .is_err());
        assert!(Dist::Triangular {
            lo: 0.0,
            mode: 5.0,
            hi: 4.0
        }
        .validated()
        .is_err());
        assert!(Dist::Constant(f64::NAN).validated().is_err());
        assert!(Dist::Normal {
            mean: 1.0,
            std: 0.0
        }
        .validated()
        .is_ok());
    }

    #[test]
    fn determinism_under_same_seed() {
        let d = Dist::LogNormal {
            mu: 1.0,
            sigma: 0.5,
        };
        let a = d.sample_n(&mut StdRng::seed_from_u64(7), 100);
        let b = d.sample_n(&mut StdRng::seed_from_u64(7), 100);
        assert_eq!(a, b);
    }
}
