//! Significance tests: Welch's t-test and the Mann–Whitney U test.
//!
//! The paper reports population-level gaps (platforms differ, conditioning
//! matters "relatively weakly"). With simulated data we can and should attach
//! significance to such comparisons: `usaas::correlate` uses Welch's t for
//! mean engagement gaps and Mann–Whitney for the heavy-tailed engagement
//! distributions where normality is hopeless.

use crate::correlation::ranks;
use crate::error::AnalyticsError;
use serde::{Deserialize, Serialize};

/// Result of a two-sample test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestResult {
    /// The test statistic (t for Welch, z-approximation for Mann–Whitney).
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Effect direction: positive when the first sample is larger.
    pub mean_difference: f64,
}

impl TestResult {
    /// Conventional significance at α = 0.05.
    pub fn significant(&self) -> bool {
        self.p_value < 0.05
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (|error| < 1.5e-7 — ample for p-values).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Welch's unequal-variance t-test (two-sided). The t distribution is
/// approximated by the normal for the p-value — the sample sizes in this
/// workspace are in the hundreds-to-thousands, where the difference is
/// negligible; the degrees of freedom are still computed and reported via
/// the statistic's accuracy.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Result<TestResult, AnalyticsError> {
    // The sample variance divides by `len - 1`: a single-element sample would
    // divide by zero and poison the statistic with NaN.
    for xs in [a, b] {
        if xs.len() < 2 {
            return Err(AnalyticsError::InsufficientData {
                needed: 2,
                got: xs.len(),
            });
        }
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let var = |xs: &[f64], m: f64| {
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
    };
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (var(a, ma), var(b, mb));
    let se = (va / a.len() as f64 + vb / b.len() as f64).sqrt();
    if se == 0.0 {
        // Identical constant samples: no evidence of difference.
        return Ok(TestResult {
            statistic: 0.0,
            p_value: 1.0,
            mean_difference: ma - mb,
        });
    }
    let t = (ma - mb) / se;
    let p = 2.0 * (1.0 - normal_cdf(t.abs()));
    Ok(TestResult {
        statistic: t,
        p_value: p.clamp(0.0, 1.0),
        mean_difference: ma - mb,
    })
}

/// Mann–Whitney U test (two-sided, normal approximation with tie-corrected
/// variance).
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Result<TestResult, AnalyticsError> {
    if a.is_empty() || b.is_empty() {
        return Err(AnalyticsError::Empty);
    }
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let mut combined: Vec<f64> = Vec::with_capacity(a.len() + b.len());
    combined.extend_from_slice(a);
    combined.extend_from_slice(b);
    let r = ranks(&combined);
    let ra: f64 = r[..a.len()].iter().sum();
    let u = ra - na * (na + 1.0) / 2.0;
    let mean_u = na * nb / 2.0;
    // Tie correction: group ranks.
    let mut sorted = combined.clone();
    sorted.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let n = na + nb;
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let var_u = na * nb / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    if var_u <= 0.0 {
        return Ok(TestResult {
            statistic: 0.0,
            p_value: 1.0,
            mean_difference: mean_diff(a, b),
        });
    }
    // Continuity correction.
    let z = (u - mean_u - 0.5 * (u - mean_u).signum()) / var_u.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Ok(TestResult {
        statistic: z,
        p_value: p.clamp(0.0, 1.0),
        mean_difference: mean_diff(a, b),
    })
}

fn mean_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().sum::<f64>() / a.len() as f64 - b.iter().sum::<f64>() / b.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Dist, Sampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_cdf_anchor_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959_964) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.959_964) - 0.025).abs() < 1e-4);
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn welch_detects_real_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Dist::Normal {
            mean: 10.0,
            std: 2.0,
        }
        .sample_n(&mut rng, 300);
        let b = Dist::Normal {
            mean: 11.0,
            std: 2.0,
        }
        .sample_n(&mut rng, 300);
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.significant(), "{r:?}");
        assert!(r.mean_difference < 0.0);
    }

    #[test]
    fn welch_accepts_null() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sig = 0;
        for _ in 0..50 {
            let a = Dist::Normal {
                mean: 10.0,
                std: 2.0,
            }
            .sample_n(&mut rng, 200);
            let b = Dist::Normal {
                mean: 10.0,
                std: 2.0,
            }
            .sample_n(&mut rng, 200);
            if welch_t_test(&a, &b).unwrap().significant() {
                sig += 1;
            }
        }
        // ~5 % false-positive rate expected at α = 0.05.
        assert!(sig <= 8, "false positives {sig}/50");
    }

    #[test]
    fn welch_handles_unequal_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Dist::Normal {
            mean: 10.0,
            std: 0.5,
        }
        .sample_n(&mut rng, 500);
        let b = Dist::Normal {
            mean: 10.4,
            std: 6.0,
        }
        .sample_n(&mut rng, 100);
        let r = welch_t_test(&a, &b).unwrap();
        // The small noisy sample dominates the SE; the point estimate can
        // wander, but it stays small and the p-value stays valid.
        assert!(r.mean_difference.abs() < 2.5, "{r:?}");
        assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[test]
    fn mann_whitney_detects_shift_in_heavy_tails() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Dist::Pareto {
            xm: 1.0,
            alpha: 1.5,
        }
        .sample_n(&mut rng, 400);
        let b: Vec<f64> = Dist::Pareto {
            xm: 1.3,
            alpha: 1.5,
        }
        .sample_n(&mut rng, 400);
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.significant(), "{r:?}");
    }

    #[test]
    fn mann_whitney_null_and_ties() {
        let a = vec![1.0, 2.0, 2.0, 3.0, 3.0, 3.0];
        let b = vec![1.0, 2.0, 2.0, 3.0, 3.0, 3.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(!r.significant(), "{r:?}");
        assert_eq!(r.mean_difference, 0.0);
    }

    #[test]
    fn single_sample_variance_is_an_error_not_nan() {
        // Regression: `len - 1 == 0` in the variance denominator used to make
        // the whole test come back NaN instead of failing loudly.
        assert_eq!(
            welch_t_test(&[1.0], &[2.0, 3.0]),
            Err(AnalyticsError::InsufficientData { needed: 2, got: 1 })
        );
        assert_eq!(
            welch_t_test(&[2.0, 3.0], &[]),
            Err(AnalyticsError::InsufficientData { needed: 2, got: 0 })
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(welch_t_test(&[1.0], &[2.0, 3.0]).is_err());
        assert!(mann_whitney_u(&[], &[1.0]).is_err());
        let constant = welch_t_test(&[5.0, 5.0, 5.0], &[5.0, 5.0]).unwrap();
        assert_eq!(constant.p_value, 1.0);
        let all_tied = mann_whitney_u(&[2.0, 2.0], &[2.0, 2.0]).unwrap();
        assert_eq!(all_tied.p_value, 1.0);
    }
}
