//! Metric binning — the core operation behind every panel of Fig. 1–4.
//!
//! The paper's engagement plots are built by bucketing sessions by one
//! network metric (e.g. mean latency 0–300 ms) and aggregating an engagement
//! metric (e.g. Mic On %) within each bucket, usually after *filtering* the
//! other metrics to reference ranges to control confounders. [`Binner`]
//! implements the bucket-and-aggregate step; the filtering lives in
//! `usaas::correlate` where the session schema is known.

use crate::descriptive;
use crate::error::AnalyticsError;
use serde::{Deserialize, Serialize};

/// Specification of equal-width bins over `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinSpec {
    /// Lower edge of the first bin.
    pub lo: f64,
    /// Upper edge of the last bin.
    pub hi: f64,
    /// Number of bins.
    pub bins: usize,
}

impl BinSpec {
    /// Create a spec; `lo < hi`, `bins >= 1`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<BinSpec, AnalyticsError> {
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
            return Err(AnalyticsError::InvalidParameter("bin spec bounds"));
        }
        if bins == 0 {
            return Err(AnalyticsError::InvalidParameter("bin spec needs >= 1 bin"));
        }
        Ok(BinSpec { lo, hi, bins })
    }

    /// Bin index for `x`, or `None` when out of range / NaN. The top edge is
    /// inclusive (a latency of exactly 300 ms lands in the last bin).
    pub fn index(&self, x: f64) -> Option<usize> {
        if x.is_nan() || x < self.lo || x > self.hi {
            return None;
        }
        let width = (self.hi - self.lo) / self.bins as f64;
        let idx = ((x - self.lo) / width) as usize;
        Some(idx.min(self.bins - 1))
    }

    /// Midpoint of bin `i`.
    pub fn mid(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.bins as f64;
        self.lo + width * (i as f64 + 0.5)
    }
}

/// Accumulates `(x, y)` pairs into x-bins, aggregating y per bin.
///
/// ```
/// use analytics::binning::{BinSpec, Binner};
/// let mut binner = Binner::new(BinSpec::new(0.0, 300.0, 6).unwrap());
/// binner.record(20.0, 100.0);
/// binner.record(280.0, 75.0);
/// let curve = binner.curve_mean(1).normalized_to_max(100.0);
/// assert_eq!(curve.first_y(), Some(100.0));
/// assert_eq!(curve.last_y(), Some(75.0));
/// ```
#[derive(Debug, Clone)]
pub struct Binner {
    spec: BinSpec,
    values: Vec<Vec<f64>>,
    dropped: usize,
}

impl Binner {
    /// New binner with the given spec.
    pub fn new(spec: BinSpec) -> Binner {
        Binner {
            spec,
            values: vec![Vec::new(); spec.bins],
            dropped: 0,
        }
    }

    /// Record one pair; out-of-range x is counted in [`Binner::dropped`].
    pub fn record(&mut self, x: f64, y: f64) {
        match self.spec.index(x) {
            Some(i) => self.values[i].push(y),
            None => self.dropped += 1,
        }
    }

    /// Number of pairs whose x fell outside the spec.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// The spec this binner was created with.
    pub fn spec(&self) -> BinSpec {
        self.spec
    }

    /// Absorb another binner over the same spec, appending its per-bin
    /// observations *after* this one's. Parallel partition stages use this
    /// to merge chunk-local binners: when each chunk covers a contiguous
    /// slice of the input and chunks are merged in slice order, every bin's
    /// observation sequence — and therefore every aggregate's floating-point
    /// result — is identical to a sequential pass. Errors on spec mismatch.
    pub fn merge(&mut self, other: Binner) -> Result<(), AnalyticsError> {
        if other.spec != self.spec {
            return Err(AnalyticsError::InvalidParameter("binner spec mismatch"));
        }
        for (mine, theirs) in self.values.iter_mut().zip(other.values) {
            mine.extend(theirs);
        }
        self.dropped += other.dropped;
        Ok(())
    }

    /// Count of observations in bin `i`.
    pub fn count(&self, i: usize) -> usize {
        self.values[i].len()
    }

    /// Build the binned curve using mean-of-y per bin. Bins with fewer than
    /// `min_count` observations get `None` (the paper's plots are noisy
    /// exactly where bins go thin; downstream code can interpolate or skip).
    pub fn curve_mean(&self, min_count: usize) -> BinnedCurve {
        self.curve_with(min_count, |ys| descriptive::mean(ys).ok())
    }

    /// Build the binned curve using median-of-y per bin.
    pub fn curve_median(&self, min_count: usize) -> BinnedCurve {
        self.curve_with(min_count, |ys| descriptive::median(ys).ok())
    }

    fn curve_with(&self, min_count: usize, agg: impl Fn(&[f64]) -> Option<f64>) -> BinnedCurve {
        let mut xs = Vec::with_capacity(self.spec.bins);
        let mut ys = Vec::with_capacity(self.spec.bins);
        let mut counts = Vec::with_capacity(self.spec.bins);
        for (i, bucket) in self.values.iter().enumerate() {
            xs.push(self.spec.mid(i));
            counts.push(bucket.len());
            if bucket.len() >= min_count.max(1) {
                ys.push(agg(bucket));
            } else {
                ys.push(None);
            }
        }
        BinnedCurve { xs, ys, counts }
    }
}

/// Compressed companion to [`Binner`]: per-bin running `(sum, count)` pairs
/// instead of observation lists, so the accumulator is O(bins) regardless of
/// how many observations it has absorbed.
///
/// Because [`descriptive::mean`] is a plain sequential left fold
/// (`xs.iter().sum::<f64>() / len`), feeding the same observations through
/// [`SumBinner::record`] *in the same order* reproduces every bin mean to
/// the bit — the running sum performs the identical sequence of additions.
/// The price is order-sensitivity: unlike [`Binner::merge`], partial sums
/// from disjoint chunks cannot be combined (float addition is not
/// associative), so there is deliberately no `merge`. Rebuilds must fold
/// rows sequentially in row order, which also makes the result trivially
/// independent of any worker count.
#[derive(Debug, Clone)]
pub struct SumBinner {
    spec: BinSpec,
    sums: Vec<f64>,
    counts: Vec<usize>,
    dropped: usize,
}

impl SumBinner {
    /// New accumulator with the given spec.
    pub fn new(spec: BinSpec) -> SumBinner {
        SumBinner {
            spec,
            sums: vec![0.0; spec.bins],
            counts: vec![0; spec.bins],
            dropped: 0,
        }
    }

    /// Adopt per-bin accumulators computed elsewhere — the branchless
    /// kernels (`kernels::masked_binned_sum_count`) produce exactly the
    /// running-sum state a `SumBinner` fed the same selected rows in the
    /// same order would hold, so the finishing passes stay shared.
    ///
    /// # Panics
    ///
    /// Panics when the accumulator lengths disagree with `spec.bins`.
    pub fn from_parts(
        spec: BinSpec,
        sums: Vec<f64>,
        counts: Vec<usize>,
        dropped: usize,
    ) -> SumBinner {
        assert_eq!(sums.len(), spec.bins, "one running sum per bin");
        assert_eq!(counts.len(), spec.bins, "one count per bin");
        SumBinner {
            spec,
            sums,
            counts,
            dropped,
        }
    }

    /// Record one pair; out-of-range x is counted in [`SumBinner::dropped`].
    pub fn record(&mut self, x: f64, y: f64) {
        match self.spec.index(x) {
            Some(i) => {
                self.sums[i] += y;
                self.counts[i] += 1;
            }
            None => self.dropped += 1,
        }
    }

    /// Number of pairs whose x fell outside the spec.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// The spec this accumulator was created with.
    pub fn spec(&self) -> BinSpec {
        self.spec
    }

    /// Count of observations in bin `i`.
    pub fn count(&self, i: usize) -> usize {
        self.counts[i]
    }

    /// Build the mean-per-bin curve — bit-identical to
    /// [`Binner::curve_mean`] fed the same observations in the same order.
    pub fn curve_mean(&self, min_count: usize) -> BinnedCurve {
        let mut xs = Vec::with_capacity(self.spec.bins);
        let mut ys = Vec::with_capacity(self.spec.bins);
        let mut counts = Vec::with_capacity(self.spec.bins);
        for i in 0..self.spec.bins {
            xs.push(self.spec.mid(i));
            counts.push(self.counts[i]);
            if self.counts[i] >= min_count.max(1) {
                ys.push(Some(self.sums[i] / self.counts[i] as f64));
            } else {
                ys.push(None);
            }
        }
        BinnedCurve { xs, ys, counts }
    }
}

/// A binned x→y curve: bin midpoints, per-bin aggregate (None when thin), and
/// per-bin counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedCurve {
    /// Bin midpoints.
    pub xs: Vec<f64>,
    /// Aggregated y per bin; `None` where the bin was too thin.
    pub ys: Vec<Option<f64>>,
    /// Observation count per bin.
    pub counts: Vec<usize>,
}

impl BinnedCurve {
    /// The populated `(x, y)` points in order.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.xs
            .iter()
            .zip(&self.ys)
            .filter_map(|(x, y)| y.map(|y| (*x, y)))
            .collect()
    }

    /// Normalize y so the *maximum* populated bin equals `scale` (the paper
    /// normalizes engagement to 100 at the best conditions).
    pub fn normalized_to_max(&self, scale: f64) -> BinnedCurve {
        let max = self
            .ys
            .iter()
            .flatten()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let ys = if max.is_finite() && max != 0.0 {
            self.ys.iter().map(|y| y.map(|y| y / max * scale)).collect()
        } else {
            self.ys.clone()
        };
        BinnedCurve {
            xs: self.xs.clone(),
            ys,
            counts: self.counts.clone(),
        }
    }

    /// y at the first populated bin.
    pub fn first_y(&self) -> Option<f64> {
        self.ys.iter().flatten().next().copied()
    }

    /// y at the last populated bin.
    pub fn last_y(&self) -> Option<f64> {
        self.ys.iter().flatten().last().copied()
    }

    /// y of the populated bin whose midpoint is closest to `x`.
    pub fn y_near(&self, x: f64) -> Option<f64> {
        self.points()
            .into_iter()
            .min_by(|a, b| {
                (a.0 - x)
                    .abs()
                    .partial_cmp(&(b.0 - x).abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(_, y)| y)
    }

    /// Average slope (Δy/Δx) between the populated bins nearest `x0` and `x1`.
    pub fn slope_between(&self, x0: f64, x1: f64) -> Option<f64> {
        let y0 = self.y_near(x0)?;
        let y1 = self.y_near(x1)?;
        if (x1 - x0).abs() < f64::EPSILON {
            return None;
        }
        Some((y1 - y0) / (x1 - x0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec() -> BinSpec {
        BinSpec::new(0.0, 300.0, 6).unwrap()
    }

    #[test]
    fn index_assignment_with_inclusive_top() {
        let s = spec();
        assert_eq!(s.index(0.0), Some(0));
        assert_eq!(s.index(49.9), Some(0));
        assert_eq!(s.index(50.0), Some(1));
        assert_eq!(s.index(300.0), Some(5)); // inclusive top edge
        assert_eq!(s.index(300.1), None);
        assert_eq!(s.index(-0.1), None);
        assert_eq!(s.index(f64::NAN), None);
        assert_eq!(s.mid(0), 25.0);
        assert_eq!(s.mid(5), 275.0);
    }

    #[test]
    fn below_range_and_nan_are_dropped_not_binned_to_zero() {
        // Regression: `((x - lo) / width) as usize` saturates negative and
        // NaN inputs to 0 — without the range guard in `BinSpec::index` they
        // would silently pile up in the lowest bin.
        let s = spec();
        assert_eq!(s.index(-50.0), None);
        assert_eq!(s.index(-f64::EPSILON), None);
        assert_eq!(s.index(f64::NAN), None);
        assert_eq!(s.index(f64::NEG_INFINITY), None);
        let mut b = Binner::new(s);
        b.record(-50.0, 1.0);
        b.record(f64::NAN, 1.0);
        assert_eq!(b.count(0), 0, "out-of-range samples leaked into bin 0");
        assert_eq!(b.dropped(), 2);
    }

    #[test]
    fn mean_curve_aggregates() {
        let mut b = Binner::new(spec());
        b.record(10.0, 100.0);
        b.record(20.0, 90.0);
        b.record(290.0, 70.0);
        b.record(500.0, 0.0); // dropped
        let c = b.curve_mean(1);
        assert_eq!(b.dropped(), 1);
        assert_eq!(c.ys[0], Some(95.0));
        assert_eq!(c.ys[5], Some(70.0));
        assert_eq!(c.ys[2], None);
        assert_eq!(c.counts[0], 2);
        assert_eq!(c.points().len(), 2);
    }

    #[test]
    fn median_curve() {
        let mut b = Binner::new(BinSpec::new(0.0, 10.0, 1).unwrap());
        for y in [1.0, 2.0, 100.0] {
            b.record(5.0, y);
        }
        let c = b.curve_median(1);
        assert_eq!(c.ys[0], Some(2.0));
    }

    #[test]
    fn merge_preserves_sequential_order() {
        // One binner fed sequentially vs two chunk-local binners merged in
        // chunk order: identical curves (the frame-parity contract).
        let xs = [10.0f64, 60.0, 20.0, 290.0, 70.0, 500.0];
        let ys = [1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut seq = Binner::new(spec());
        for (x, y) in xs.iter().zip(&ys) {
            seq.record(*x, *y);
        }
        let mut lo = Binner::new(spec());
        let mut hi = Binner::new(spec());
        for i in 0..3 {
            lo.record(xs[i], ys[i]);
        }
        for i in 3..6 {
            hi.record(xs[i], ys[i]);
        }
        lo.merge(hi).unwrap();
        assert_eq!(lo.curve_mean(1), seq.curve_mean(1));
        assert_eq!(lo.dropped(), seq.dropped());
        assert_eq!(lo.spec(), seq.spec());
    }

    #[test]
    fn merge_rejects_mismatched_specs() {
        let mut a = Binner::new(spec());
        let b = Binner::new(BinSpec::new(0.0, 10.0, 2).unwrap());
        assert!(a.merge(b).is_err());
    }

    proptest! {
        #[test]
        fn sum_binner_matches_binner_to_the_bit(
            pairs in prop::collection::vec((-50.0f64..350.0, 0.0f64..100.0), 0..200),
            min_count in 0usize..4,
        ) {
            // The compressed accumulator's running sum performs the exact
            // addition sequence `descriptive::mean` performs at finish, so
            // the curves must be bit-equal for any observation sequence.
            let mut lists = Binner::new(spec());
            let mut sums = SumBinner::new(spec());
            for (x, y) in &pairs {
                lists.record(*x, *y);
                sums.record(*x, *y);
            }
            prop_assert_eq!(sums.dropped(), lists.dropped());
            let a = lists.curve_mean(min_count);
            let b = sums.curve_mean(min_count);
            prop_assert_eq!(&a.counts, &b.counts);
            prop_assert_eq!(&a.xs, &b.xs);
            for (ya, yb) in a.ys.iter().zip(&b.ys) {
                prop_assert_eq!(
                    ya.map(f64::to_bits),
                    yb.map(f64::to_bits),
                    "bin means diverged: {:?} vs {:?}", ya, yb
                );
            }
        }
    }

    #[test]
    fn min_count_thins_bins() {
        let mut b = Binner::new(spec());
        b.record(10.0, 50.0);
        let c = b.curve_mean(2);
        assert_eq!(c.ys[0], None);
        assert_eq!(c.counts[0], 1);
    }

    #[test]
    fn normalization_sets_max_to_scale() {
        let mut b = Binner::new(spec());
        b.record(10.0, 80.0);
        b.record(290.0, 40.0);
        let c = b.curve_mean(1).normalized_to_max(100.0);
        assert_eq!(c.first_y(), Some(100.0));
        assert_eq!(c.last_y(), Some(50.0));
    }

    #[test]
    fn slope_between_bins() {
        let mut b = Binner::new(spec());
        b.record(25.0, 100.0);
        b.record(275.0, 50.0);
        let c = b.curve_mean(1);
        let s = c.slope_between(25.0, 275.0).unwrap();
        assert!((s - (-0.2)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn every_in_range_x_gets_a_bin(x in 0.0..=300.0f64) {
            let s = spec();
            let i = s.index(x).unwrap();
            prop_assert!(i < s.bins);
            // Midpoint of the assigned bin is within half a width of x.
            let width = 300.0 / 6.0;
            prop_assert!((s.mid(i) - x).abs() <= width / 2.0 + 1e-9);
        }
    }
}
