//! Subsampling and bootstrap utilities.
//!
//! Fig. 7 of the paper re-plots monthly median downlink speeds using 95 % and
//! 90 % of the data "picked uniformly at random" to show the medians are
//! stable; [`subsample`] implements that draw and [`bootstrap_ci`] gives the
//! stronger version (a percentile bootstrap confidence interval) used by the
//! extended analyses.

use crate::descriptive;
use crate::error::AnalyticsError;
use rand::seq::SliceRandom;
use rand::Rng;

/// Draw `fraction` (in `(0, 1]`) of `xs` uniformly at random without
/// replacement. Always returns at least one element for non-empty input.
pub fn subsample<R: Rng + ?Sized>(
    rng: &mut R,
    xs: &[f64],
    fraction: f64,
) -> Result<Vec<f64>, AnalyticsError> {
    if xs.is_empty() {
        return Err(AnalyticsError::Empty);
    }
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(AnalyticsError::InvalidParameter(
            "fraction must be in (0, 1]",
        ));
    }
    let k = ((xs.len() as f64 * fraction).round() as usize).clamp(1, xs.len());
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.shuffle(rng);
    Ok(idx[..k].iter().map(|&i| xs[i]).collect())
}

/// Percentile-bootstrap confidence interval for a statistic.
///
/// Resamples `xs` with replacement `resamples` times, applies `stat`, and
/// returns the `(lo, hi)` percentile bounds of the resulting distribution at
/// confidence `conf` (e.g. `0.95` → 2.5th and 97.5th percentiles).
pub fn bootstrap_ci<R: Rng + ?Sized>(
    rng: &mut R,
    xs: &[f64],
    resamples: usize,
    conf: f64,
    stat: impl Fn(&[f64]) -> f64,
) -> Result<(f64, f64), AnalyticsError> {
    if xs.is_empty() {
        return Err(AnalyticsError::Empty);
    }
    if resamples == 0 {
        return Err(AnalyticsError::InvalidParameter("resamples must be > 0"));
    }
    if !(conf > 0.0 && conf < 1.0) {
        return Err(AnalyticsError::InvalidParameter(
            "confidence must be in (0, 1)",
        ));
    }
    let n = xs.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; n];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = xs[rng.gen_range(0..n)];
        }
        stats.push(stat(&buf));
    }
    let alpha = (1.0 - conf) / 2.0 * 100.0;
    let lo = descriptive::percentile(&stats, alpha)?;
    let hi = descriptive::percentile(&stats, 100.0 - alpha)?;
    Ok((lo, hi))
}

/// Reservoir-sample `k` items from an iterator (Algorithm R). Returns fewer
/// than `k` when the iterator is shorter.
pub fn reservoir<R: Rng + ?Sized, T>(
    rng: &mut R,
    iter: impl Iterator<Item = T>,
    k: usize,
) -> Vec<T> {
    if k == 0 {
        return Vec::new();
    }
    let mut out: Vec<T> = Vec::with_capacity(k);
    for (i, item) in iter.enumerate() {
        if out.len() < k {
            out.push(item);
        } else {
            let j = rng.gen_range(0..=i);
            if j < k {
                out[j] = item;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::median;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn subsample_sizes() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut r = rng();
        assert_eq!(subsample(&mut r, &xs, 0.95).unwrap().len(), 95);
        assert_eq!(subsample(&mut r, &xs, 0.90).unwrap().len(), 90);
        assert_eq!(subsample(&mut r, &xs, 1.0).unwrap().len(), 100);
        assert_eq!(subsample(&mut r, &xs, 0.001).unwrap().len(), 1);
        assert!(subsample(&mut r, &xs, 0.0).is_err());
        assert!(subsample(&mut r, &xs, 1.5).is_err());
        assert!(subsample(&mut r, &[], 0.5).is_err());
    }

    #[test]
    fn subsample_median_is_stable() {
        // The Fig. 7 stability check: 95 %/90 % subsample medians track the full median.
        let mut r = rng();
        let xs: Vec<f64> = (0..1000).map(|i| 50.0 + (i % 60) as f64).collect();
        let full = median(&xs).unwrap();
        for frac in [0.95, 0.90] {
            let sub = subsample(&mut r, &xs, frac).unwrap();
            let m = median(&sub).unwrap();
            assert!((m - full).abs() / full < 0.05, "frac {frac}: {m} vs {full}");
        }
    }

    #[test]
    fn subsample_without_replacement() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut r = rng();
        let mut sub = subsample(&mut r, &xs, 1.0).unwrap();
        sub.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sub, xs);
    }

    #[test]
    fn bootstrap_ci_contains_truth() {
        let mut r = rng();
        let xs: Vec<f64> = (0..500).map(|i| (i % 100) as f64).collect();
        let (lo, hi) = bootstrap_ci(&mut r, &xs, 400, 0.95, |s| median(s).unwrap()).unwrap();
        let true_med = median(&xs).unwrap();
        assert!(
            lo <= true_med && true_med <= hi,
            "[{lo}, {hi}] vs {true_med}"
        );
        assert!(hi - lo < 20.0, "CI too wide: [{lo}, {hi}]");
    }

    #[test]
    fn bootstrap_validation() {
        let mut r = rng();
        assert!(bootstrap_ci(&mut r, &[], 10, 0.9, |_| 0.0).is_err());
        assert!(bootstrap_ci(&mut r, &[1.0], 0, 0.9, |_| 0.0).is_err());
        assert!(bootstrap_ci(&mut r, &[1.0], 10, 1.0, |_| 0.0).is_err());
    }

    #[test]
    fn reservoir_counts() {
        let mut r = rng();
        let got = reservoir(&mut r, 0..100, 10);
        assert_eq!(got.len(), 10);
        let short = reservoir(&mut r, 0..3, 10);
        assert_eq!(short.len(), 3);
        let none: Vec<i32> = reservoir(&mut r, 0..100, 0);
        assert!(none.is_empty());
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        let mut r = rng();
        let mut hits = [0usize; 10];
        for _ in 0..5000 {
            for v in reservoir(&mut r, 0..10, 3) {
                hits[v as usize] += 1;
            }
        }
        // Each of 10 items should appear ~ 5000 * 3/10 = 1500 times.
        for (i, h) in hits.iter().enumerate() {
            assert!((1200..1800).contains(h), "item {i} hit {h} times");
        }
    }
}
