//! Civil-date arithmetic without external dependencies.
//!
//! The social-media pipelines (§4 of the paper) are organised around calendar
//! days and months between Jan 2021 and Dec 2022: daily sentiment counts,
//! monthly median downlink speeds, weekday/business-hour call filters (§3.1).
//! This module provides a compact proleptic-Gregorian [`Date`] (stored as days
//! since 1970-01-01) plus month iteration and weekday logic — everything the
//! workspace needs, and nothing more.
//!
//! The day-number conversion follows Howard Hinnant's well-known
//! `days_from_civil` algorithm (public domain), which is exact over the whole
//! `i32` year range.

use crate::error::AnalyticsError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Day of the week. `Monday` = 0 … `Sunday` = 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Weekday {
    /// Monday.
    Monday,
    /// Tuesday.
    Tuesday,
    /// Wednesday.
    Wednesday,
    /// Thursday.
    Thursday,
    /// Friday.
    Friday,
    /// Saturday.
    Saturday,
    /// Sunday.
    Sunday,
}

impl Weekday {
    /// True for Monday–Friday. The paper's §3.1 call dataset keeps weekday
    /// business-hour calls only.
    pub fn is_business_day(self) -> bool {
        !matches!(self, Weekday::Saturday | Weekday::Sunday)
    }

    fn from_index(i: u32) -> Weekday {
        match i {
            0 => Weekday::Monday,
            1 => Weekday::Tuesday,
            2 => Weekday::Wednesday,
            3 => Weekday::Thursday,
            4 => Weekday::Friday,
            5 => Weekday::Saturday,
            _ => Weekday::Sunday,
        }
    }
}

/// A calendar month, identified by year and month number (1–12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Month {
    /// Calendar year.
    pub year: i32,
    /// Month number, 1 = January … 12 = December.
    pub month: u8,
}

impl Month {
    /// Construct a month; `month` must be 1–12.
    pub fn new(year: i32, month: u8) -> Result<Month, AnalyticsError> {
        if !(1..=12).contains(&month) {
            return Err(AnalyticsError::InvalidDate {
                year,
                month,
                day: 1,
            });
        }
        Ok(Month { year, month })
    }

    /// First day of this month.
    pub fn first_day(self) -> Date {
        Date::from_ymd(self.year, self.month, 1).expect("month is validated")
    }

    /// Last day of this month.
    pub fn last_day(self) -> Date {
        let len = days_in_month(self.year, self.month);
        Date::from_ymd(self.year, self.month, len).expect("month is validated")
    }

    /// The month after this one.
    pub fn next(self) -> Month {
        if self.month == 12 {
            Month {
                year: self.year + 1,
                month: 1,
            }
        } else {
            Month {
                year: self.year,
                month: self.month + 1,
            }
        }
    }

    /// Number of days in this month.
    pub fn len_days(self) -> u8 {
        days_in_month(self.year, self.month)
    }

    /// Iterate months from `self` through `end` inclusive.
    pub fn iter_through(self, end: Month) -> impl Iterator<Item = Month> {
        let mut cur = self;
        let mut done = false;
        std::iter::from_fn(move || {
            if done || cur > end {
                return None;
            }
            let out = cur;
            if cur == end {
                done = true;
            } else {
                cur = cur.next();
            }
            Some(out)
        })
    }

    /// Months elapsed since another month (can be negative).
    pub fn months_since(self, other: Month) -> i32 {
        (self.year - other.year) * 12 + i32::from(self.month) - i32::from(other.month)
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [&str; 12] = [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ];
        write!(
            f,
            "{}'{}",
            NAMES[(self.month - 1) as usize],
            self.year % 100
        )
    }
}

/// A proleptic-Gregorian calendar date stored as days since 1970-01-01.
///
/// Cheap to copy, totally ordered, and supports day arithmetic via
/// [`Date::offset`] / [`Date::days_since`].
///
/// ```
/// use analytics::time::Date;
/// let outage = Date::from_ymd(2022, 4, 22).unwrap();
/// assert_eq!(outage.to_string(), "2022-04-22");
/// assert_eq!(outage.offset(7).days_since(outage), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date(i32);

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl Date {
    /// Construct from year/month/day, validating the calendar.
    pub fn from_ymd(year: i32, month: u8, day: u8) -> Result<Date, AnalyticsError> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(AnalyticsError::InvalidDate { year, month, day });
        }
        // Hinnant days_from_civil.
        let y = i64::from(year) - i64::from(month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = i64::from(month);
        let d = i64::from(day);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        let days = era * 146_097 + doe - 719_468;
        Ok(Date(days as i32))
    }

    /// Construct directly from days since the Unix epoch.
    pub fn from_days(days: i32) -> Date {
        Date(days)
    }

    /// Days since 1970-01-01 (can be negative).
    pub fn days(self) -> i32 {
        self.0
    }

    /// Decompose into (year, month, day). Inverse of [`Date::from_ymd`].
    pub fn ymd(self) -> (i32, u8, u8) {
        // Hinnant civil_from_days.
        let z = i64::from(self.0) + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
        let year = if m <= 2 { y + 1 } else { y };
        (year as i32, m as u8, d as u8)
    }

    /// Calendar year.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// The month this date falls in.
    pub fn month(self) -> Month {
        let (y, m, _) = self.ymd();
        Month { year: y, month: m }
    }

    /// Day of month (1–31).
    pub fn day(self) -> u8 {
        self.ymd().2
    }

    /// Weekday of this date (1970-01-01 was a Thursday).
    pub fn weekday(self) -> Weekday {
        // days() == 0 => Thursday (index 3 with Monday = 0).
        let idx = (self.0 + 3).rem_euclid(7) as u32;
        Weekday::from_index(idx)
    }

    /// The date `delta` days later (earlier if negative).
    pub fn offset(self, delta: i32) -> Date {
        Date(self.0 + delta)
    }

    /// Signed number of days from `other` to `self`.
    pub fn days_since(self, other: Date) -> i32 {
        self.0 - other.0
    }

    /// Iterate every day from `self` through `end` inclusive.
    pub fn iter_through(self, end: Date) -> impl Iterator<Item = Date> {
        (self.0..=end.0).map(Date)
    }
}

impl fmt::Display for Date {
    /// ISO 8601 (`YYYY-MM-DD`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_thursday() {
        let d = Date::from_ymd(1970, 1, 1).unwrap();
        assert_eq!(d.days(), 0);
        assert_eq!(d.weekday(), Weekday::Thursday);
    }

    #[test]
    fn known_dates_round_trip() {
        for (y, m, d, days) in [
            (1970, 1, 1, 0),
            (1970, 1, 2, 1),
            (1969, 12, 31, -1),
            (2000, 3, 1, 11017),
            (2021, 1, 1, 18628),
            (2022, 4, 22, 19104),
            (2022, 12, 31, 19357),
        ] {
            let date = Date::from_ymd(y, m, d).unwrap();
            assert_eq!(date.days(), days, "{y}-{m}-{d}");
            assert_eq!(date.ymd(), (y, m, d));
        }
    }

    #[test]
    fn paper_peak_dates_have_expected_weekdays() {
        // 2021-02-09 was a Tuesday, 2021-11-24 a Wednesday, 2022-04-22 a Friday.
        assert_eq!(
            Date::from_ymd(2021, 2, 9).unwrap().weekday(),
            Weekday::Tuesday
        );
        assert_eq!(
            Date::from_ymd(2021, 11, 24).unwrap().weekday(),
            Weekday::Wednesday
        );
        assert_eq!(
            Date::from_ymd(2022, 4, 22).unwrap().weekday(),
            Weekday::Friday
        );
    }

    #[test]
    fn rejects_bad_dates() {
        assert!(Date::from_ymd(2022, 2, 29).is_err());
        assert!(Date::from_ymd(2020, 2, 29).is_ok()); // leap year
        assert!(Date::from_ymd(2022, 13, 1).is_err());
        assert!(Date::from_ymd(2022, 0, 1).is_err());
        assert!(Date::from_ymd(2022, 4, 31).is_err());
        assert!(Date::from_ymd(2022, 4, 0).is_err());
    }

    #[test]
    fn month_iteration_covers_study_window() {
        let start = Month::new(2021, 1).unwrap();
        let end = Month::new(2022, 12).unwrap();
        let months: Vec<Month> = start.iter_through(end).collect();
        assert_eq!(months.len(), 24);
        assert_eq!(months[0].to_string(), "Jan'21");
        assert_eq!(months[23].to_string(), "Dec'22");
        assert_eq!(end.months_since(start), 23);
    }

    #[test]
    fn month_boundaries() {
        let feb22 = Month::new(2022, 2).unwrap();
        assert_eq!(feb22.first_day().to_string(), "2022-02-01");
        assert_eq!(feb22.last_day().to_string(), "2022-02-28");
        assert_eq!(feb22.len_days(), 28);
        assert_eq!(Month::new(2020, 2).unwrap().len_days(), 29);
        assert_eq!(
            Month::new(2022, 12).unwrap().next(),
            Month::new(2023, 1).unwrap()
        );
    }

    #[test]
    fn day_iteration_inclusive() {
        let a = Date::from_ymd(2022, 4, 20).unwrap();
        let b = Date::from_ymd(2022, 4, 22).unwrap();
        let days: Vec<Date> = a.iter_through(b).collect();
        assert_eq!(days.len(), 3);
        assert_eq!(days[2], b);
    }

    #[test]
    fn business_days() {
        assert!(Weekday::Friday.is_business_day());
        assert!(!Weekday::Saturday.is_business_day());
        assert!(!Weekday::Sunday.is_business_day());
    }

    proptest! {
        #[test]
        fn ymd_round_trips(days in -200_000i32..200_000) {
            let date = Date::from_days(days);
            let (y, m, d) = date.ymd();
            let back = Date::from_ymd(y, m, d).unwrap();
            prop_assert_eq!(back, date);
        }

        #[test]
        fn successive_days_advance_weekday(days in -10_000i32..10_000) {
            let a = Date::from_days(days);
            let b = a.offset(7);
            prop_assert_eq!(a.weekday(), b.weekday());
            prop_assert_eq!(b.days_since(a), 7);
        }

        #[test]
        fn month_of_day_contains_day(days in -100_000i32..100_000) {
            let date = Date::from_days(days);
            let month = date.month();
            prop_assert!(month.first_day() <= date);
            prop_assert!(date <= month.last_day());
        }
    }
}
