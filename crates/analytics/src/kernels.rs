//! Branchless, SIMD-shaped columnar kernels.
//!
//! Every §3 figure is ultimately a masked aggregate over flat `f64`
//! columns: *filter* rows by a predicate (the reference-confounder mask, an
//! access-type selection, a bin-range check), then *accumulate* the
//! survivors. The straightforward row loop pays a data-dependent branch per
//! row, which the predicates make effectively random — the branch predictor
//! misses constantly and the loop cannot be vectorised. The kernels here
//! replace every per-row `if` with **predication**: the selection bit is
//! widened to an all-ones/all-zeros word and ANDed into the operand's bits
//! (`f64::from_bits(v.to_bits() & (sel as u64).wrapping_neg())`), so
//! masked-out rows contribute the operation's identity (`+0.0` for sums,
//! `±∞` for min/max, `0` for counts) and the loop body becomes straight-line
//! code LLVM can unroll and auto-vectorise.
//!
//! # Bit-identity rules
//!
//! The workspace's signature invariant is that every aggregate is
//! bit-identical across worker counts and across code paths, so the kernels
//! obey the same discipline the `SumBinner` views established:
//!
//! * **Sum-bearing kernels keep a single accumulator fed in row order.**
//!   Floating-point addition is not associative, so a multi-lane sum would
//!   diverge from the sequential left fold the reference paths perform. The
//!   masked add is safe because the identity contribution is a bitwise
//!   no-op: an accumulator that starts at `+0.0` can never become `-0.0`
//!   (`a + b` is `-0.0` only when both operands are), `x + 0.0` preserves
//!   `x`'s bits for every other `x`, and a masked-out `NaN`'s bits are
//!   zeroed before the add. Each kernel's `_ref` twin performs the branchy
//!   left fold, and the parity suite asserts bit-equality via `to_bits`.
//! * **Order-insensitive kernels may lane-unroll.** Counts are integer
//!   adds (associative), and min/max over canonicalised values (zeros
//!   normalised to `+0.0` by adding `0.0`, `NaN`s dropped by the predicated
//!   compare) is associative and commutative with bit-identical ties, so
//!   these kernels run `LANES` independent accumulators per block and
//!   combine them in fixed lane order.
//!
//! Because every kernel is sequential over the column, results are
//! trivially independent of any `workers` knob — the routed paths accept
//! the knob for API stability and ignore it, exactly like the view
//! rebuilds.

use crate::binning::BinSpec;

/// Accumulator lanes for the order-insensitive kernels. Wide enough to
/// cover a 512-bit vector of `f64`, small enough that the fixed-order
/// combine stays negligible.
const LANES: usize = 8;

/// An all-ones (`sel = 1`) or all-zeros (`sel = 0`) `u64` — the predication
/// widen.
#[inline(always)]
fn widen(sel: u64) -> u64 {
    sel.wrapping_neg()
}

/// `v` where `sel = 1`, `+0.0` where `sel = 0`, without a branch.
#[inline(always)]
fn select_or_zero(v: f64, sel: u64) -> f64 {
    f64::from_bits(v.to_bits() & widen(sel))
}

/// `v` where `sel = 1`, `fill` where `sel = 0`, without a branch.
#[inline(always)]
fn select_or(v: f64, fill: f64, sel: u64) -> f64 {
    let m = widen(sel);
    f64::from_bits((v.to_bits() & m) | (fill.to_bits() & !m))
}

/// A packed per-row selection bitmask: bit `i` of word `i / 64` is set iff
/// row `i` is selected. The §3 reference-confounder filter compiles to one
/// of these per sweep metric (see `SessionFrame::ref_row_mask` in the
/// `usaas` crate), so the kernels consume the filter lane-wise — 64 rows'
/// predicates per `u64` load — instead of re-deriving it per row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMask {
    words: Vec<u64>,
    len: usize,
}

impl RowMask {
    /// Build a mask of `len` rows from a per-row predicate. Tail bits past
    /// `len` are zero, so word-wise population counts are exact.
    pub fn from_fn(len: usize, mut selected: impl FnMut(usize) -> bool) -> RowMask {
        let mut words = vec![0u64; len.div_ceil(64)];
        for i in 0..len {
            words[i / 64] |= u64::from(selected(i)) << (i % 64);
        }
        RowMask { words, len }
    }

    /// Number of rows covered (selected or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether row `i` is selected.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// The packed word holding rows `w * 64 ..`, zero-padded past the end.
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Number of selected rows — a lane-unrolled population count (integer
    /// adds are associative, so the block order is free).
    pub fn count(&self) -> usize {
        let mut lanes = [0u64; LANES];
        for block in self.words.chunks(LANES) {
            for (lane, w) in lanes.iter_mut().zip(block) {
                *lane += u64::from(w.count_ones());
            }
        }
        lanes.iter().sum::<u64>() as usize
    }
}

/// Masked sum: the total of `values[i]` over selected rows, accumulated in
/// row order (see the module docs for why the single accumulator is
/// mandatory). Branchless: masked-out rows add `+0.0`, a bitwise no-op.
pub fn masked_sum(values: &[f64], mask: &RowMask) -> f64 {
    assert_eq!(values.len(), mask.len(), "mask must cover every row");
    let mut acc = 0.0f64;
    for (w, block) in values.chunks(64).enumerate() {
        let word = mask.word(w);
        for (j, &v) in block.iter().enumerate() {
            acc += select_or_zero(v, (word >> j) & 1);
        }
    }
    acc
}

/// The branchy sequential left fold [`masked_sum`] must match to the bit.
pub fn masked_sum_ref(values: &[f64], mask: &RowMask) -> f64 {
    assert_eq!(values.len(), mask.len(), "mask must cover every row");
    let mut acc = 0.0f64;
    for (i, &v) in values.iter().enumerate() {
        if mask.get(i) {
            acc += v;
        }
    }
    acc
}

/// Masked mean over selected rows: [`masked_sum`] divided by the selected
/// count, `None` when nothing is selected. The division is the same final
/// step `descriptive::mean` performs, so the result is bit-identical to
/// filtering the rows into a `Vec` and calling it.
pub fn masked_mean(values: &[f64], mask: &RowMask) -> Option<f64> {
    let n = mask.count();
    if n == 0 {
        return None;
    }
    Some(masked_sum(values, mask) / n as f64)
}

/// Masked min/max over selected non-`NaN` rows, zeros canonicalised to
/// `+0.0`; `None` when no such row exists. Lane-unrolled: min/max over
/// canonical values is associative and commutative with bit-identical
/// ties, so the `LANES` accumulators combine in fixed lane order without
/// affecting the result.
pub fn masked_min_max(values: &[f64], mask: &RowMask) -> Option<(f64, f64)> {
    assert_eq!(values.len(), mask.len(), "mask must cover every row");
    let mut mins = [f64::INFINITY; LANES];
    let mut maxs = [f64::NEG_INFINITY; LANES];
    let mut seen = [0u64; LANES];
    let mut i = 0usize;
    while i < values.len() {
        let lane = i % LANES;
        // Canonicalise (`-0.0 + 0.0 = +0.0`) so equal values carry equal
        // bits and tie order cannot matter.
        let v = values[i] + 0.0;
        let sel = u64::from(mask.get(i)) & u64::from(!v.is_nan());
        let lo = select_or(v, f64::INFINITY, sel);
        let hi = select_or(v, f64::NEG_INFINITY, sel);
        mins[lane] = if lo < mins[lane] { lo } else { mins[lane] };
        maxs[lane] = if hi > maxs[lane] { hi } else { maxs[lane] };
        seen[lane] += sel;
        i += 1;
    }
    if seen.iter().sum::<u64>() == 0 {
        return None;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for lane in 0..LANES {
        min = if mins[lane] < min { mins[lane] } else { min };
        max = if maxs[lane] > max { maxs[lane] } else { max };
    }
    Some((min, max))
}

/// The branchy sequential reference for [`masked_min_max`]: same
/// canonicalisation, same `NaN`-skipping, one row at a time.
pub fn masked_min_max_ref(values: &[f64], mask: &RowMask) -> Option<(f64, f64)> {
    assert_eq!(values.len(), mask.len(), "mask must cover every row");
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut seen = false;
    for (i, &raw) in values.iter().enumerate() {
        let v = raw + 0.0;
        if mask.get(i) && !v.is_nan() {
            seen = true;
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
    }
    seen.then_some((min, max))
}

/// Per-bin running `(sum, count)` accumulators plus the dropped-row count —
/// the state a `SumBinner` fed the same selected rows in the same order
/// would hold (`SumBinner::from_parts` adopts it directly).
#[derive(Debug, Clone, PartialEq)]
pub struct BinAccum {
    /// Per-bin running sums, in row order.
    pub sums: Vec<f64>,
    /// Per-bin observation counts.
    pub counts: Vec<usize>,
    /// Selected rows whose x fell outside the spec (`BinSpec::index` =
    /// `None`).
    pub dropped: usize,
}

/// Bin index of `x` under `spec`, assuming `x` is in range — the same
/// arithmetic as [`BinSpec::index`] without the range branch (the caller
/// folds the range check into the selection bit).
#[inline(always)]
fn raw_bin(spec: &BinSpec, x: f64) -> usize {
    let width = (spec.hi - spec.lo) / spec.bins as f64;
    // `as usize` saturates NaN/negative to 0 and huge to usize::MAX; the
    // clamp plus the caller's range bit make every out-of-range row a
    // masked no-op on bin 0 or bins-1.
    (((x - spec.lo) / width) as usize).min(spec.bins - 1)
}

/// Whether `x` lands in `spec`'s range (false for `NaN`), as a selection
/// bit.
#[inline(always)]
fn in_range_bit(spec: &BinSpec, x: f64) -> u64 {
    u64::from(x >= spec.lo) & u64::from(x <= spec.hi)
}

/// The Fig. 1 workhorse: bin `xs[i]` under `spec` and accumulate `ys[i]`
/// into that bin's running sum, over selected rows, in row order.
/// Branchless: the selection bit and the range bit combine into one
/// predicate, masked-out rows scatter `+0.0`/`+0` onto a clamped bin —
/// a bitwise no-op — and selected out-of-range rows bump `dropped`,
/// matching `Binner`/`SumBinner::record` exactly.
pub fn masked_binned_sum_count(xs: &[f64], ys: &[f64], mask: &RowMask, spec: BinSpec) -> BinAccum {
    assert_eq!(xs.len(), ys.len(), "x and y columns must align");
    assert_eq!(xs.len(), mask.len(), "mask must cover every row");
    let mut acc = BinAccum {
        sums: vec![0.0; spec.bins],
        counts: vec![0; spec.bins],
        dropped: 0,
    };
    for (w, block) in xs.chunks(64).enumerate() {
        let word = mask.word(w);
        let base = w * 64;
        for (j, &x) in block.iter().enumerate() {
            let bit = (word >> j) & 1;
            let in_range = in_range_bit(&spec, x);
            let sel = bit & in_range;
            let idx = raw_bin(&spec, x);
            acc.sums[idx] += select_or_zero(ys[base + j], sel);
            acc.counts[idx] += sel as usize;
            acc.dropped += (bit & (1 - in_range)) as usize;
        }
    }
    acc
}

/// The branchy reference for [`masked_binned_sum_count`]: the literal
/// `if selected { record(x, y) }` loop over a running-sum accumulator.
pub fn masked_binned_sum_count_ref(
    xs: &[f64],
    ys: &[f64],
    mask: &RowMask,
    spec: BinSpec,
) -> BinAccum {
    assert_eq!(xs.len(), ys.len(), "x and y columns must align");
    assert_eq!(xs.len(), mask.len(), "mask must cover every row");
    let mut acc = BinAccum {
        sums: vec![0.0; spec.bins],
        counts: vec![0; spec.bins],
        dropped: 0,
    };
    for i in 0..xs.len() {
        if !mask.get(i) {
            continue;
        }
        match spec.index(xs[i]) {
            Some(idx) => {
                acc.sums[idx] += ys[i];
                acc.counts[idx] += 1;
            }
            None => acc.dropped += 1,
        }
    }
    acc
}

/// The Fig. 2 workhorse: a two-axis binned accumulate — cell
/// `yi * x.bins + xi` gets `vs[i]`'s running sum when **both** axes are in
/// range (no confounder mask; Fig. 2 bins every call). Row order, single
/// accumulator per cell, branchless scatter.
pub fn grid_sum_count(
    xs: &[f64],
    ys: &[f64],
    vs: &[f64],
    x: BinSpec,
    y: BinSpec,
) -> (Vec<f64>, Vec<usize>) {
    assert_eq!(xs.len(), ys.len(), "axis columns must align");
    assert_eq!(xs.len(), vs.len(), "value column must align");
    let mut sums = vec![0.0; x.bins * y.bins];
    let mut counts = vec![0usize; x.bins * y.bins];
    for i in 0..xs.len() {
        let sel = in_range_bit(&x, xs[i]) & in_range_bit(&y, ys[i]);
        let cell = raw_bin(&y, ys[i]) * x.bins + raw_bin(&x, xs[i]);
        sums[cell] += select_or_zero(vs[i], sel);
        counts[cell] += sel as usize;
    }
    (sums, counts)
}

/// The branchy reference for [`grid_sum_count`].
pub fn grid_sum_count_ref(
    xs: &[f64],
    ys: &[f64],
    vs: &[f64],
    x: BinSpec,
    y: BinSpec,
) -> (Vec<f64>, Vec<usize>) {
    assert_eq!(xs.len(), ys.len(), "axis columns must align");
    assert_eq!(xs.len(), vs.len(), "value column must align");
    let mut sums = vec![0.0; x.bins * y.bins];
    let mut counts = vec![0usize; x.bins * y.bins];
    for i in 0..xs.len() {
        let (Some(xi), Some(yi)) = (x.index(xs[i]), y.index(ys[i])) else {
            continue;
        };
        sums[yi * x.bins + xi] += vs[i];
        counts[yi * x.bins + xi] += 1;
    }
    (sums, counts)
}

/// The Fig. 3 workhorse: [`masked_binned_sum_count`] partitioned by a
/// per-row slot (`slots[i] < slot_count`, e.g. the platform index), flat
/// cell `slot * spec.bins + bin`. Selected out-of-range rows bump their
/// slot's `dropped` — the same bookkeeping as one `SumBinner` per slot.
pub fn masked_slot_binned_sum_count(
    xs: &[f64],
    ys: &[f64],
    slots: &[u32],
    slot_count: usize,
    mask: &RowMask,
    spec: BinSpec,
) -> (Vec<f64>, Vec<usize>, Vec<usize>) {
    assert_eq!(xs.len(), ys.len(), "x and y columns must align");
    assert_eq!(xs.len(), slots.len(), "slot column must align");
    assert_eq!(xs.len(), mask.len(), "mask must cover every row");
    let mut sums = vec![0.0; slot_count * spec.bins];
    let mut counts = vec![0usize; slot_count * spec.bins];
    let mut dropped = vec![0usize; slot_count];
    for (w, block) in xs.chunks(64).enumerate() {
        let word = mask.word(w);
        let base = w * 64;
        for (j, &x) in block.iter().enumerate() {
            let bit = (word >> j) & 1;
            let in_range = in_range_bit(&spec, x);
            let sel = bit & in_range;
            let slot = slots[base + j] as usize;
            let cell = slot * spec.bins + raw_bin(&spec, x);
            sums[cell] += select_or_zero(ys[base + j], sel);
            counts[cell] += sel as usize;
            dropped[slot] += (bit & (1 - in_range)) as usize;
        }
    }
    (sums, counts, dropped)
}

/// The branchy reference for [`masked_slot_binned_sum_count`].
pub fn masked_slot_binned_sum_count_ref(
    xs: &[f64],
    ys: &[f64],
    slots: &[u32],
    slot_count: usize,
    mask: &RowMask,
    spec: BinSpec,
) -> (Vec<f64>, Vec<usize>, Vec<usize>) {
    assert_eq!(xs.len(), ys.len(), "x and y columns must align");
    assert_eq!(xs.len(), slots.len(), "slot column must align");
    assert_eq!(xs.len(), mask.len(), "mask must cover every row");
    let mut sums = vec![0.0; slot_count * spec.bins];
    let mut counts = vec![0usize; slot_count * spec.bins];
    let mut dropped = vec![0usize; slot_count];
    for i in 0..xs.len() {
        if !mask.get(i) {
            continue;
        }
        let slot = slots[i] as usize;
        match spec.index(xs[i]) {
            Some(idx) => {
                sums[slot * spec.bins + idx] += ys[i];
                counts[slot * spec.bins + idx] += 1;
            }
            None => dropped[slot] += 1,
        }
    }
    (sums, counts, dropped)
}

/// Masked per-slot tally: `out[slots[i]] += 1` for every selected row —
/// the integer-count core of the §4 text tallies (strong-sentiment posts
/// per day, strong-negative posts per latitude band). Counts are integer
/// adds, so the accumulation is order-insensitive and the loop body is a
/// branchless scatter: the mask bit itself is the addend.
pub fn masked_slot_counts(slots: &[u32], slot_count: usize, mask: &RowMask) -> Vec<usize> {
    assert_eq!(slots.len(), mask.len(), "mask must cover every row");
    let mut counts = vec![0usize; slot_count];
    for (w, block) in slots.chunks(64).enumerate() {
        let word = mask.word(w);
        for (j, &slot) in block.iter().enumerate() {
            counts[slot as usize] += ((word >> j) & 1) as usize;
        }
    }
    counts
}

/// The branchy reference for [`masked_slot_counts`].
pub fn masked_slot_counts_ref(slots: &[u32], slot_count: usize, mask: &RowMask) -> Vec<usize> {
    assert_eq!(slots.len(), mask.len(), "mask must cover every row");
    let mut counts = vec![0usize; slot_count];
    for (i, &slot) in slots.iter().enumerate() {
        if mask.get(i) {
            counts[slot as usize] += 1;
        }
    }
    counts
}

/// Indexed gather: `out[k] = values[idx[k]]`. A pure data movement — the
/// predictor's feature assembly gathers each column once instead of
/// striding row-wise, and the moved bits are untouched so downstream
/// arithmetic is bit-identical.
pub fn gather(values: &[f64], idx: &[usize]) -> Vec<f64> {
    idx.iter().map(|&i| values[i]).collect()
}

/// Count how many of `tokens` appear in the ascending, deduplicated
/// `sorted` id table — the ID-space keyword tally behind the §4 sentiment
/// demand scans. The membership test is a branchless binary search (the
/// compare drives a conditional move, not a jump) and the per-token hits
/// are integer adds, so the accumulation lane-unrolls freely.
pub fn count_members_u32(tokens: &[u32], sorted: &[u32]) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let mut lanes = [0usize; LANES];
    for block in tokens.chunks(LANES) {
        for (lane, &t) in lanes.iter_mut().zip(block) {
            let mut base = 0usize;
            let mut size = sorted.len();
            while size > 1 {
                let half = size / 2;
                let mid = base + half;
                base = if sorted[mid] <= t { mid } else { base };
                size -= half;
            }
            *lane += usize::from(sorted[base] == t);
        }
    }
    lanes.iter().sum()
}

/// The branchy reference for [`count_members_u32`].
pub fn count_members_u32_ref(tokens: &[u32], sorted: &[u32]) -> usize {
    tokens
        .iter()
        .filter(|t| sorted.binary_search(t).is_ok())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec() -> BinSpec {
        BinSpec::new(0.0, 300.0, 6).unwrap()
    }

    /// Splice the ugly corners — NaN, infinities, signed zeros, the
    /// inclusive top edge — into a generated vector at seed-chosen
    /// positions, so every property also covers the non-finite paths.
    fn inject_specials(vals: &mut [f64], seed: u64) {
        const SPECIALS: [f64; 6] = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            0.0,
            300.0, // the inclusive top edge of `spec()`
        ];
        if vals.is_empty() {
            return;
        }
        for (k, &s) in SPECIALS.iter().enumerate() {
            // Roughly one special of each kind per ~10 rows.
            let at = (seed.rotate_left(11 * k as u32) as usize) % (vals.len() * 4);
            if at < vals.len() {
                vals[at] = s;
            }
        }
    }

    fn mask_from_seed(len: usize, seed: u64) -> RowMask {
        RowMask::from_fn(len, |i| (seed.rotate_left(i as u32) ^ i as u64) & 1 == 1)
    }

    #[test]
    fn row_mask_packs_and_counts() {
        let mask = RowMask::from_fn(130, |i| i % 3 == 0);
        assert_eq!(mask.len(), 130);
        assert!(!mask.is_empty());
        for i in 0..130 {
            assert_eq!(mask.get(i), i % 3 == 0, "row {i}");
        }
        assert_eq!(mask.count(), (0..130).filter(|i| i % 3 == 0).count());
        assert!(RowMask::from_fn(0, |_| true).is_empty());
        assert_eq!(RowMask::from_fn(0, |_| true).count(), 0);
        // Tail bits beyond len stay zero even when the predicate is true.
        let all = RowMask::from_fn(65, |_| true);
        assert_eq!(all.count(), 65);
        assert_eq!(all.word(1), 1);
    }

    #[test]
    fn empty_and_single_row_edges() {
        let empty = RowMask::from_fn(0, |_| true);
        assert_eq!(masked_sum(&[], &empty).to_bits(), 0.0f64.to_bits());
        assert_eq!(masked_min_max(&[], &empty), None);
        assert_eq!(masked_mean(&[], &empty), None);
        let one = RowMask::from_fn(1, |_| true);
        assert_eq!(masked_sum(&[2.5], &one), 2.5);
        assert_eq!(masked_min_max(&[2.5], &one), Some((2.5, 2.5)));
        let none = RowMask::from_fn(1, |_| false);
        assert_eq!(masked_sum(&[2.5], &none), 0.0);
        assert_eq!(masked_min_max(&[2.5], &none), None);
        // An all-NaN selection has no min/max.
        assert_eq!(masked_min_max(&[f64::NAN], &one), None);
    }

    proptest! {
        #[test]
        fn masked_sum_is_bit_identical_to_the_branchy_fold(
            raw in prop::collection::vec(-400.0f64..400.0, 0..200),
            seed in 0u64..u64::MAX,
        ) {
            let mut vals = raw;
            inject_specials(&mut vals, seed);
            let mask = mask_from_seed(vals.len(), seed);
            prop_assert_eq!(
                masked_sum(&vals, &mask).to_bits(),
                masked_sum_ref(&vals, &mask).to_bits()
            );
        }

        #[test]
        fn masked_min_max_is_bit_identical(
            raw in prop::collection::vec(-400.0f64..400.0, 0..200),
            seed in 0u64..u64::MAX,
        ) {
            let mut vals = raw;
            inject_specials(&mut vals, seed);
            let mask = mask_from_seed(vals.len(), seed);
            let a = masked_min_max(&vals, &mask);
            let b = masked_min_max_ref(&vals, &mask);
            prop_assert_eq!(
                a.map(|(lo, hi)| (lo.to_bits(), hi.to_bits())),
                b.map(|(lo, hi)| (lo.to_bits(), hi.to_bits()))
            );
        }

        #[test]
        fn binned_kernel_is_bit_identical(
            raw in prop::collection::vec(-400.0f64..400.0, 0..200),
            seed in 0u64..u64::MAX,
        ) {
            let mut xs = raw;
            inject_specials(&mut xs, seed);
            let ys: Vec<f64> = xs.iter().rev().cloned().collect();
            let mask = mask_from_seed(xs.len(), seed);
            let a = masked_binned_sum_count(&xs, &ys, &mask, spec());
            let b = masked_binned_sum_count_ref(&xs, &ys, &mask, spec());
            prop_assert_eq!(a.counts, b.counts);
            prop_assert_eq!(a.dropped, b.dropped);
            for (s, r) in a.sums.iter().zip(&b.sums) {
                prop_assert_eq!(s.to_bits(), r.to_bits());
            }
        }

        #[test]
        fn grid_kernel_is_bit_identical(
            raw in prop::collection::vec(-400.0f64..400.0, 0..200),
            seed in 0u64..u64::MAX,
        ) {
            let mut xs = raw;
            inject_specials(&mut xs, seed);
            let ys: Vec<f64> = xs.iter().map(|v| v / 100.0).collect();
            let vs: Vec<f64> = xs.iter().rev().cloned().collect();
            let gy = BinSpec::new(0.0, 3.0, 5).unwrap();
            let gx = BinSpec::new(0.0, 300.0, 5).unwrap();
            let (s1, c1) = grid_sum_count(&xs, &ys, &vs, gx, gy);
            let (s2, c2) = grid_sum_count_ref(&xs, &ys, &vs, gx, gy);
            prop_assert_eq!(c1, c2);
            for (a, b) in s1.iter().zip(&s2) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn slot_count_kernel_matches_the_branchy_tally(
            len in 0usize..300,
            seed in 0u64..u64::MAX,
        ) {
            let slots: Vec<u32> = (0..len)
                .map(|i| ((seed.rotate_left(i as u32) ^ i as u64) % 9) as u32)
                .collect();
            let mask = mask_from_seed(len, seed);
            prop_assert_eq!(
                masked_slot_counts(&slots, 9, &mask),
                masked_slot_counts_ref(&slots, 9, &mask)
            );
        }

        #[test]
        fn slot_kernel_is_bit_identical(
            raw in prop::collection::vec(-400.0f64..400.0, 0..200),
            seed in 0u64..u64::MAX,
        ) {
            let mut xs = raw;
            inject_specials(&mut xs, seed);
            let ys: Vec<f64> = xs.iter().rev().cloned().collect();
            let slots: Vec<u32> = (0..xs.len()).map(|i| (i % 3) as u32).collect();
            let mask = mask_from_seed(xs.len(), seed);
            let (s1, c1, d1) =
                masked_slot_binned_sum_count(&xs, &ys, &slots, 3, &mask, spec());
            let (s2, c2, d2) =
                masked_slot_binned_sum_count_ref(&xs, &ys, &slots, 3, &mask, spec());
            prop_assert_eq!(c1, c2);
            prop_assert_eq!(d1, d2);
            for (a, b) in s1.iter().zip(&s2) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn member_count_matches_binary_search(
            tokens in prop::collection::vec(0u32..500, 0..300),
            raw_table in prop::collection::vec(0u32..500, 0..40),
        ) {
            let mut table = raw_table;
            table.sort_unstable();
            table.dedup();
            prop_assert_eq!(
                count_members_u32(&tokens, &table),
                count_members_u32_ref(&tokens, &table)
            );
        }
    }

    #[test]
    fn gather_moves_exact_bits() {
        let vals = [1.5, f64::NAN, -0.0, 42.0];
        let out = gather(&vals, &[3, 1, 2]);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].to_bits(), 42.0f64.to_bits());
        assert_eq!(out[1].to_bits(), vals[1].to_bits());
        assert_eq!(out[2].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn member_count_empty_table_is_zero() {
        assert_eq!(count_members_u32(&[1, 2, 3], &[]), 0);
        assert_eq!(count_members_u32(&[], &[1, 2, 3]), 0);
    }
}
