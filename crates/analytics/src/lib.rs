//! # analytics
//!
//! Statistics, civil-date arithmetic, and distribution-sampling substrate for
//! the `user-signals` workspace.
//!
//! The paper's pipelines (HotNets '23, *Don't Forget the User*) are built
//! almost entirely out of a small set of statistical primitives: per-session
//! aggregation (mean / median / P95), metric binning, correlation
//! (Pearson / Spearman), regression (the §5 MOS predictor), daily time-series
//! with peak detection (Fig. 5/6), and uniform subsampling (the Fig. 7
//! 95 % / 90 % stability check). This crate implements all of them from
//! scratch on top of `std` + `rand`, so the rest of the workspace stays free
//! of heavyweight numeric dependencies.
//!
//! Nothing in here is domain-specific; the domain crates (`netsim`,
//! `conference`, `social`, …) compose these primitives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod changepoint;
pub mod correlation;
pub mod descriptive;
pub mod dist;
pub mod error;
pub mod histogram;
pub mod kernels;
pub mod matrix;
pub mod regression;
pub mod sampling;
pub mod stats_tests;
pub mod time;
pub mod timeseries;

pub use binning::{BinSpec, BinnedCurve, Binner};
pub use changepoint::{binary_segmentation, most_prominent_shift, ChangePoint};
pub use correlation::{kendall_tau, pearson, spearman};
pub use descriptive::{desc_nan_last, mean, median, percentile, stddev, variance, Summary};
pub use dist::{Dist, Sampler};
pub use error::AnalyticsError;
pub use histogram::Histogram;
pub use kernels::{BinAccum, RowMask};
pub use matrix::Matrix;
pub use regression::{LinearModel, LogisticModel};
pub use sampling::{bootstrap_ci, subsample};
pub use stats_tests::{mann_whitney_u, welch_t_test, TestResult};
pub use time::{Date, Month, Weekday};
pub use timeseries::{DailySeries, Peak};
