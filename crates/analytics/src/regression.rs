//! Linear and logistic regression.
//!
//! §5 of the paper mentions *"using AI/ML techniques to predict MOS scores
//! from user engagement and network conditions"* (omitted for brevity there);
//! `usaas::predict` builds that predictor on these models. Linear regression
//! is solved exactly via the normal equations (ridge-stabilised); logistic
//! regression is fit by batch gradient descent.

use crate::error::AnalyticsError;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Ordinary least squares with optional ridge regularisation.
///
/// The model is `y = intercept + w · x`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Intercept term.
    pub intercept: f64,
    /// Per-feature weights.
    pub weights: Vec<f64>,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
}

impl LinearModel {
    /// Fit on rows of features `xs[i]` and targets `ys[i]`.
    ///
    /// `ridge` (≥ 0) adds `ridge * I` to the normal matrix (intercept
    /// excluded) — with the small default used by callers this mostly guards
    /// against collinear synthetic features.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], ridge: f64) -> Result<LinearModel, AnalyticsError> {
        if xs.is_empty() || ys.is_empty() {
            return Err(AnalyticsError::Empty);
        }
        if xs.len() != ys.len() {
            return Err(AnalyticsError::LengthMismatch {
                left: xs.len(),
                right: ys.len(),
            });
        }
        let d = xs[0].len();
        if d == 0 || xs.iter().any(|r| r.len() != d) {
            return Err(AnalyticsError::InvalidParameter("ragged feature rows"));
        }
        if ridge < 0.0 || !ridge.is_finite() {
            return Err(AnalyticsError::InvalidParameter("ridge must be >= 0"));
        }
        let n = xs.len();
        let p = d + 1; // +1 for intercept column
                       // Normal equations: (X'X + ridge*I) w = X'y, with X including a ones column.
        let mut xtx = Matrix::zeros(p, p);
        let mut xty = vec![0.0; p];
        for (row, &y) in xs.iter().zip(ys) {
            // augmented row: [1, x...]
            for a in 0..p {
                let xa = if a == 0 { 1.0 } else { row[a - 1] };
                xty[a] += xa * y;
                for b in a..p {
                    let xb = if b == 0 { 1.0 } else { row[b - 1] };
                    xtx[(a, b)] += xa * xb;
                }
            }
        }
        // Mirror the upper triangle and apply ridge (not on intercept).
        for a in 0..p {
            for b in (a + 1)..p {
                xtx[(b, a)] = xtx[(a, b)];
            }
        }
        for a in 1..p {
            xtx[(a, a)] += ridge;
        }
        let sol = xtx.solve(&xty)?;
        let intercept = sol[0];
        let weights = sol[1..].to_vec();

        // R² on training data.
        let mean_y = ys.iter().sum::<f64>() / n as f64;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        for (row, &y) in xs.iter().zip(ys) {
            let pred = intercept + row.iter().zip(&weights).map(|(x, w)| x * w).sum::<f64>();
            ss_res += (y - pred) * (y - pred);
            ss_tot += (y - mean_y) * (y - mean_y);
        }
        let r_squared = if ss_tot == 0.0 {
            0.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Ok(LinearModel {
            intercept,
            weights,
            r_squared,
        })
    }

    /// Predict for one feature row (rows shorter than the weight vector are
    /// an error).
    pub fn predict(&self, x: &[f64]) -> Result<f64, AnalyticsError> {
        if x.len() != self.weights.len() {
            return Err(AnalyticsError::LengthMismatch {
                left: x.len(),
                right: self.weights.len(),
            });
        }
        Ok(self.intercept + x.iter().zip(&self.weights).map(|(x, w)| x * w).sum::<f64>())
    }

    /// Predict for many rows.
    pub fn predict_many(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, AnalyticsError> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// Binary logistic regression fit with batch gradient descent.
///
/// The model is `P(y=1|x) = sigmoid(intercept + w · x)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticModel {
    /// Intercept term.
    pub intercept: f64,
    /// Per-feature weights.
    pub weights: Vec<f64>,
    /// Gradient-descent iterations actually used.
    pub iterations: usize,
}

/// Numerically-stable sigmoid.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticModel {
    /// Fit on rows of features and boolean labels.
    ///
    /// `lr` is the learning rate (e.g. 0.1), `max_iter` bounds iterations;
    /// convergence is declared when the max absolute gradient component drops
    /// below `1e-6`.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[bool],
        lr: f64,
        max_iter: usize,
    ) -> Result<LogisticModel, AnalyticsError> {
        if xs.is_empty() || ys.is_empty() {
            return Err(AnalyticsError::Empty);
        }
        if xs.len() != ys.len() {
            return Err(AnalyticsError::LengthMismatch {
                left: xs.len(),
                right: ys.len(),
            });
        }
        let d = xs[0].len();
        if d == 0 || xs.iter().any(|r| r.len() != d) {
            return Err(AnalyticsError::InvalidParameter("ragged feature rows"));
        }
        if lr <= 0.0 || !lr.is_finite() {
            return Err(AnalyticsError::InvalidParameter(
                "learning rate must be > 0",
            ));
        }
        let n = xs.len() as f64;
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let mut iterations = max_iter;
        for it in 0..max_iter {
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            for (row, &y) in xs.iter().zip(ys) {
                let z = b + row.iter().zip(&w).map(|(x, w)| x * w).sum::<f64>();
                let err = sigmoid(z) - if y { 1.0 } else { 0.0 };
                gb += err;
                for (g, x) in gw.iter_mut().zip(row) {
                    *g += err * x;
                }
            }
            gb /= n;
            for g in gw.iter_mut() {
                *g /= n;
            }
            b -= lr * gb;
            for (wi, g) in w.iter_mut().zip(&gw) {
                *wi -= lr * g;
            }
            let max_g = gw.iter().map(|g| g.abs()).fold(gb.abs(), f64::max);
            if max_g < 1e-6 {
                iterations = it + 1;
                break;
            }
        }
        Ok(LogisticModel {
            intercept: b,
            weights: w,
            iterations,
        })
    }

    /// Predicted probability for one row.
    pub fn predict_proba(&self, x: &[f64]) -> Result<f64, AnalyticsError> {
        if x.len() != self.weights.len() {
            return Err(AnalyticsError::LengthMismatch {
                left: x.len(),
                right: self.weights.len(),
            });
        }
        let z = self.intercept + x.iter().zip(&self.weights).map(|(x, w)| x * w).sum::<f64>();
        Ok(sigmoid(z))
    }

    /// Hard classification at threshold 0.5.
    pub fn predict(&self, x: &[f64]) -> Result<bool, AnalyticsError> {
        Ok(self.predict_proba(x)? >= 0.5)
    }
}

/// Mean absolute error between predictions and targets.
pub fn mae(pred: &[f64], truth: &[f64]) -> Result<f64, AnalyticsError> {
    if pred.len() != truth.len() {
        return Err(AnalyticsError::LengthMismatch {
            left: pred.len(),
            right: truth.len(),
        });
    }
    if pred.is_empty() {
        return Err(AnalyticsError::Empty);
    }
    Ok(pred
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64)
}

/// Root-mean-square error between predictions and targets.
pub fn rmse(pred: &[f64], truth: &[f64]) -> Result<f64, AnalyticsError> {
    if pred.len() != truth.len() {
        return Err(AnalyticsError::LengthMismatch {
            left: pred.len(),
            right: truth.len(),
        });
    }
    if pred.is_empty() {
        return Err(AnalyticsError::Empty);
    }
    let ms = pred
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64;
    Ok(ms.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn linear_recovers_exact_coefficients() {
        // y = 3 + 2a - b
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64 * 0.1, (i % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| 3.0 + 2.0 * r[0] - r[1]).collect();
        let m = LinearModel::fit(&xs, &ys, 0.0).unwrap();
        assert!((m.intercept - 3.0).abs() < 1e-8, "{}", m.intercept);
        assert!((m.weights[0] - 2.0).abs() < 1e-8);
        assert!((m.weights[1] + 1.0).abs() < 1e-8);
        assert!(m.r_squared > 0.999999);
        assert!((m.predict(&[1.0, 2.0]).unwrap() - 3.0).abs() < 1e-8);
    }

    #[test]
    fn linear_with_noise_still_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<Vec<f64>> = (0..500).map(|_| vec![rng.gen_range(0.0..10.0)]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|r| 1.0 + 0.5 * r[0] + 0.05 * crate::dist::standard_normal(&mut rng))
            .collect();
        let m = LinearModel::fit(&xs, &ys, 1e-6).unwrap();
        assert!((m.weights[0] - 0.5).abs() < 0.02, "{}", m.weights[0]);
        assert!(m.r_squared > 0.95);
    }

    #[test]
    fn linear_errors() {
        assert!(LinearModel::fit(&[], &[], 0.0).is_err());
        assert!(LinearModel::fit(&[vec![1.0]], &[1.0, 2.0], 0.0).is_err());
        assert!(LinearModel::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0], 0.0).is_err());
        assert!(LinearModel::fit(&[vec![1.0]], &[1.0], -1.0).is_err());
        // Collinear duplicated feature is singular without ridge…
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(
            LinearModel::fit(&xs, &ys, 0.0),
            Err(AnalyticsError::Singular)
        );
        // …but solvable with it.
        assert!(LinearModel::fit(&xs, &ys, 1e-6).is_ok());
    }

    #[test]
    fn logistic_learns_separable_boundary() {
        // label = x > 2
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 * 0.02]).collect();
        let ys: Vec<bool> = xs.iter().map(|r| r[0] > 2.0).collect();
        let m = LogisticModel::fit(&xs, &ys, 0.5, 20_000).unwrap();
        assert!(!m.predict(&[0.5]).unwrap());
        assert!(m.predict(&[3.5]).unwrap());
        assert!(m.predict_proba(&[3.9]).unwrap() > 0.8);
        assert!(m.predict_proba(&[0.1]).unwrap() < 0.2);
    }

    #[test]
    fn sigmoid_stable_and_bounded() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) > 0.999999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(-1e300) >= 0.0);
        assert!(sigmoid(1e300) <= 1.0);
    }

    #[test]
    fn error_metrics() {
        let pred = [1.0, 2.0, 3.0];
        let truth = [1.0, 1.0, 5.0];
        assert!((mae(&pred, &truth).unwrap() - 1.0).abs() < 1e-12);
        let r = rmse(&pred, &truth).unwrap();
        assert!((r - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(mae(&pred, &truth[..2]).is_err());
        assert!(rmse(&[], &[]).is_err());
    }
}
