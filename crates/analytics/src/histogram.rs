//! Fixed-width histograms.
//!
//! Used for distribution sanity checks in tests and for the word-cloud /
//! activity summaries in the social pipeline.

use crate::error::AnalyticsError;
use serde::{Deserialize, Serialize};

/// A fixed-bin-width histogram over `[lo, hi)` with underflow/overflow/NaN
/// counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    nan: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Histogram, AnalyticsError> {
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
            return Err(AnalyticsError::InvalidParameter("histogram bounds"));
        }
        if bins == 0 {
            return Err(AnalyticsError::InvalidParameter("histogram needs >= 1 bin"));
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            nan: 0,
            total: 0,
        })
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        // NaN is not "below lo" — `(x - lo) / width as usize` would saturate
        // it into bin 0, and calling it underflow misreports the data. Count
        // it on its own.
        if x.is_nan() {
            self.nan += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Record every observation in a slice.
    pub fn record_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.record(x);
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All in-range bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// NaN observations (neither under- nor overflow).
    pub fn nan(&self) -> u64 {
        self.nan
    }

    /// Total observations recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Midpoint of bin `i`.
    pub fn bin_mid(&self, i: usize) -> f64 {
        let (a, b) = self.bin_edges(i);
        (a + b) / 2.0
    }

    /// Fraction of in-range mass in bin `i` (0 if nothing in range).
    pub fn fraction(&self, i: usize) -> f64 {
        let in_range = self.total - self.underflow - self.overflow - self.nan;
        if in_range == 0 {
            0.0
        } else {
            self.counts[i] as f64 / in_range as f64
        }
    }

    /// Index of the fullest bin (ties broken toward lower index); `None` if
    /// no in-range observations.
    pub fn mode_bin(&self) -> Option<usize> {
        let max = *self.counts.iter().max()?;
        if max == 0 {
            return None;
        }
        self.counts.iter().position(|c| *c == max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.record(0.0);
        h.record(0.5);
        h.record(9.99);
        h.record(-1.0);
        h.record(10.0);
        h.record(f64::NAN);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.nan(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn negative_and_nan_never_land_in_bin_zero() {
        // Regression: `((x - lo) / width) as usize` saturates negative and
        // NaN inputs to 0 — without the range guard they'd silently inflate
        // the lowest bin.
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.record_all(&[-5.0, -0.001, f64::NAN, f64::NEG_INFINITY]);
        assert_eq!(h.count(0), 0, "out-of-range samples leaked into bin 0");
        assert_eq!(h.underflow(), 3);
        assert_eq!(h.nan(), 1);
        assert_eq!(h.fraction(0), 0.0);
    }

    #[test]
    fn edges_and_mids() {
        let h = Histogram::new(0.0, 100.0, 4).unwrap();
        assert_eq!(h.bin_edges(0), (0.0, 25.0));
        assert_eq!(h.bin_edges(3), (75.0, 100.0));
        assert_eq!(h.bin_mid(1), 37.5);
    }

    #[test]
    fn fractions_sum_to_one_over_in_range() {
        let mut h = Histogram::new(0.0, 1.0, 5).unwrap();
        h.record_all(&[0.1, 0.3, 0.5, 0.7, 0.9, 2.0]);
        let s: f64 = (0..h.bins()).map(|i| h.fraction(i)).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mode_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3).unwrap();
        assert_eq!(h.mode_bin(), None);
        h.record_all(&[0.5, 1.5, 1.6, 2.5]);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    fn invalid_construction() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 3).is_err());
    }
}
