//! A small dense-matrix type with Gaussian elimination.
//!
//! Just enough linear algebra for the normal equations of
//! [`crate::regression::LinearModel`]. Row-major, `f64`, partial pivoting.

use crate::error::AnalyticsError;
use serde::{Deserialize, Serialize};

/// Row-major dense `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from nested rows; all rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Matrix, AnalyticsError> {
        if rows.is_empty() {
            return Err(AnalyticsError::Empty);
        }
        let cols = rows[0].len();
        if cols == 0 || rows.iter().any(|r| r.len() != cols) {
            return Err(AnalyticsError::InvalidParameter("ragged matrix rows"));
        }
        let data = rows.iter().flatten().copied().collect();
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, AnalyticsError> {
        if self.cols != other.rows {
            return Err(AnalyticsError::LengthMismatch {
                left: self.cols,
                right: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, AnalyticsError> {
        if self.cols != v.len() {
            return Err(AnalyticsError::LengthMismatch {
                left: self.cols,
                right: v.len(),
            });
        }
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[i] += self[(i, j)] * v[j];
            }
        }
        Ok(out)
    }

    /// Solve `self * x = b` by Gaussian elimination with partial pivoting.
    /// Requires a square, non-singular matrix.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, AnalyticsError> {
        if self.rows != self.cols {
            return Err(AnalyticsError::InvalidParameter(
                "solve requires square matrix",
            ));
        }
        if b.len() != self.rows {
            return Err(AnalyticsError::LengthMismatch {
                left: self.rows,
                right: b.len(),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for row in (col + 1)..n {
                let v = a[row * n + col].abs();
                if v > best {
                    best = v;
                    pivot = row;
                }
            }
            if best < 1e-12 {
                return Err(AnalyticsError::Singular);
            }
            if pivot != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot * n + j);
                }
                x.swap(col, pivot);
            }
            // Eliminate below.
            for row in (col + 1)..n {
                let factor = a[row * n + col] / a[col * n + col];
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[row * n + j] -= factor * a[col * n + j];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in (col + 1)..n {
                acc -= a[col * n + j] * x[j];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_solves_trivially() {
        let id = Matrix::identity(3);
        let b = [1.0, 2.0, 3.0];
        assert_eq!(id.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(a.solve(&[1.0, 2.0]), Err(AnalyticsError::Singular));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn multiply_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let at = a.transpose();
        assert_eq!(at[(0, 1)], 3.0);
        let prod = a.mul(&at).unwrap();
        assert_eq!(prod[(0, 0)], 5.0);
        assert_eq!(prod[(1, 1)], 25.0);
        let v = a.mul_vec(&[1.0, 1.0]).unwrap();
        assert_eq!(v, vec![3.0, 7.0]);
    }

    #[test]
    fn shape_errors() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(a.solve(&[1.0]).is_err()); // non-square
        assert!(a.mul_vec(&[1.0]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    proptest! {
        #[test]
        fn solve_then_multiply_recovers_b(
            diag in prop::collection::vec(1.0..10.0f64, 2..6),
            off in -0.4..0.4f64,
            b in prop::collection::vec(-10.0..10.0f64, 2..6),
        ) {
            let n = diag.len().min(b.len());
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = if i == j { diag[i] } else { off };
                }
            }
            let bb = &b[..n];
            let x = a.solve(bb).unwrap();
            let back = a.mul_vec(&x).unwrap();
            for (u, v) in back.iter().zip(bb) {
                prop_assert!((u - v).abs() < 1e-6);
            }
        }
    }
}
