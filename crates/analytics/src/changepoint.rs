//! Change-point detection (CUSUM) for regime shifts in series.
//!
//! Fig. 7's story has a regime change — speeds rise until late summer 2021
//! and then enter a long decline. A USaaS deployment should detect such
//! shifts automatically rather than eyeball them; this module implements a
//! mean-shift CUSUM with a single-change binary-segmentation refinement that
//! `usaas::digest` applies to the monthly speed and sentiment series.

use crate::error::AnalyticsError;
use serde::{Deserialize, Serialize};

/// One detected change point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChangePoint {
    /// Index in the series where the new regime starts.
    pub index: usize,
    /// Mean before the change.
    pub mean_before: f64,
    /// Mean after the change.
    pub mean_after: f64,
    /// Normalised CUSUM score of the change (higher = sharper).
    pub score: f64,
}

impl ChangePoint {
    /// Signed magnitude of the shift.
    pub fn shift(&self) -> f64 {
        self.mean_after - self.mean_before
    }
}

/// Find the single most prominent mean-shift in `xs`.
///
/// Uses the maximum of the centred CUSUM statistic
/// `S_k = Σ_{i≤k} (x_i - x̄)`, normalised by `σ·√n`; returns `None` when the
/// normalised score is below `min_score` (i.e. the series looks stationary).
pub fn most_prominent_shift(
    xs: &[f64],
    min_score: f64,
) -> Result<Option<ChangePoint>, AnalyticsError> {
    if xs.len() < 4 {
        return Err(AnalyticsError::Empty);
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let sd = (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64).sqrt();
    if sd == 0.0 {
        return Ok(None);
    }
    let mut cusum = 0.0;
    let mut best_k = 0;
    let mut best_abs = 0.0;
    for (i, x) in xs.iter().enumerate().take(n - 1) {
        cusum += x - mean;
        if cusum.abs() > best_abs {
            best_abs = cusum.abs();
            best_k = i;
        }
    }
    let score = best_abs / (sd * (n as f64).sqrt());
    if score < min_score {
        return Ok(None);
    }
    let split = best_k + 1; // new regime starts after the extremal prefix
    let before = &xs[..split];
    let after = &xs[split..];
    Ok(Some(ChangePoint {
        index: split,
        mean_before: before.iter().sum::<f64>() / before.len() as f64,
        mean_after: after.iter().sum::<f64>() / after.len() as f64,
        score,
    }))
}

/// Recursive binary segmentation: up to `max_changes` change points, each
/// required to clear `min_score` within its segment. Indices are returned in
/// ascending order.
pub fn binary_segmentation(
    xs: &[f64],
    min_score: f64,
    max_changes: usize,
) -> Result<Vec<ChangePoint>, AnalyticsError> {
    if xs.len() < 4 {
        return Err(AnalyticsError::Empty);
    }
    let mut out: Vec<ChangePoint> = Vec::new();
    segment(xs, 0, min_score, max_changes, &mut out);
    out.sort_by_key(|c| c.index);
    Ok(out)
}

fn segment(xs: &[f64], offset: usize, min_score: f64, budget: usize, out: &mut Vec<ChangePoint>) {
    if budget == 0 || xs.len() < 8 {
        return;
    }
    let Ok(Some(cp)) = most_prominent_shift(xs, min_score) else {
        return;
    };
    let split = cp.index;
    out.push(ChangePoint {
        index: offset + split,
        ..cp
    });
    let remaining = budget - 1;
    // Split the budget greedily: left first, then right with what is left.
    let before_len = out.len();
    segment(&xs[..split], offset, min_score, remaining, out);
    let used = out.len() - before_len;
    segment(
        &xs[split..],
        offset + split,
        min_score,
        remaining.saturating_sub(used),
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_clean_step() {
        let mut xs = vec![10.0; 30];
        xs.extend(vec![20.0; 30]);
        let cp = most_prominent_shift(&xs, 0.5).unwrap().unwrap();
        assert_eq!(cp.index, 30);
        assert!((cp.mean_before - 10.0).abs() < 1e-9);
        assert!((cp.mean_after - 20.0).abs() < 1e-9);
        assert!((cp.shift() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn stationary_series_yields_none() {
        let xs: Vec<f64> = (0..60).map(|i| 10.0 + (i % 2) as f64 * 0.1).collect();
        assert!(most_prominent_shift(&xs, 0.8).unwrap().is_none());
        let constant = vec![5.0; 20];
        assert!(most_prominent_shift(&constant, 0.5).unwrap().is_none());
    }

    #[test]
    fn rise_then_decline_detected_like_fig7() {
        // A Fig. 7-shaped series: rise to a peak around index 8, then decline.
        let xs: Vec<f64> = (0..24)
            .map(|i| {
                if i <= 8 {
                    65.0 + 3.0 * i as f64
                } else {
                    89.0 - 2.5 * (i - 8) as f64
                }
            })
            .collect();
        let cps = binary_segmentation(&xs, 0.6, 2).unwrap();
        assert!(!cps.is_empty());
        // On a ramp there is no single crisp mean shift; what matters is that
        // a boundary with a *downward* regime lands around the peak.
        let decline = cps
            .iter()
            .find(|c| c.shift() < 0.0)
            .expect("a declining regime must be detected");
        assert!(
            (8..=18).contains(&decline.index),
            "decline boundary at {} ({cps:?})",
            decline.index
        );
    }

    #[test]
    fn two_steps_found_by_segmentation() {
        let mut xs = vec![0.0; 20];
        xs.extend(vec![10.0; 20]);
        xs.extend(vec![-5.0; 20]);
        let cps = binary_segmentation(&xs, 0.5, 3).unwrap();
        assert!(cps.len() >= 2, "{cps:?}");
        assert!(cps.iter().any(|c| (19..=21).contains(&c.index)));
        assert!(cps.iter().any(|c| (39..=41).contains(&c.index)));
        assert!(cps.windows(2).all(|w| w[0].index < w[1].index));
    }

    #[test]
    fn short_series_errors() {
        assert!(most_prominent_shift(&[1.0, 2.0], 0.5).is_err());
        assert!(binary_segmentation(&[1.0, 2.0, 3.0], 0.5, 1).is_err());
    }
}
