//! Ground-truth outage events (Fig. 6).
//!
//! Three large outages anchor the study window: the widely-reported
//! 2022-01-07 and 2022-08-30 incidents, and the 2022-04-22 event that the
//! paper found confirmed by Redditors in 14 countries but **absent from the
//! press**. Around them, a seeded Poisson process generates the *"numerous
//! shorter peaks … local transient outages"* the paper attributes to
//! satellite/earth geometry, weather, GEO-arc avoidance, and deployment
//! planning. Because this module is ground truth, the `usaas` outage
//! detector can be scored for precision/recall — something the paper itself
//! could not do.

use analytics::dist::{poisson, Dist, Sampler};
use analytics::time::Date;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One outage event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outage {
    /// Day the outage occurred.
    pub date: Date,
    /// Severity in `(0, 1]`: fraction of affected users who notice.
    pub severity: f64,
    /// Number of countries affected.
    pub countries: u16,
    /// Approximate duration in hours.
    pub duration_hours: f64,
    /// Whether the press covered it (drives the news-index check).
    pub reported_in_press: bool,
    /// Cause label for transient events.
    pub cause: OutageCause,
}

/// Cause taxonomy for transient outages (§4.1's list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutageCause {
    /// Global software/ground-segment failure.
    GroundSegment,
    /// Satellite/earth geometry gap.
    Geometry,
    /// Weather (rain fade, snow on dish).
    Weather,
    /// GEO-arc avoidance manoeuvring.
    GeoArcAvoidance,
    /// Cell-level deployment/provisioning issue.
    Deployment,
}

impl Outage {
    /// True for the global, multi-country incidents.
    pub fn is_major(&self) -> bool {
        self.severity >= 0.5
    }
}

/// The three anchor outages.
pub fn major_outages() -> Vec<Outage> {
    let d = |y, m, day| Date::from_ymd(y, m, day).expect("valid embedded date");
    vec![
        Outage {
            date: d(2022, 1, 7),
            severity: 0.9,
            countries: 30,
            duration_hours: 4.0,
            reported_in_press: true,
            cause: OutageCause::GroundSegment,
        },
        Outage {
            date: d(2022, 4, 22),
            severity: 0.8,
            countries: 14,
            duration_hours: 2.5,
            reported_in_press: false, // the paper's headline finding
            cause: OutageCause::GroundSegment,
        },
        Outage {
            date: d(2022, 8, 30),
            severity: 0.85,
            countries: 25,
            duration_hours: 3.0,
            reported_in_press: true,
            cause: OutageCause::GroundSegment,
        },
    ]
}

/// Generator configuration for the transient-outage background process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientOutageConfig {
    /// Mean transient outages per week.
    pub per_week: f64,
    /// Severity distribution (clamped to `(0, 0.45]` so transients never
    /// masquerade as major outages).
    pub severity: Dist,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransientOutageConfig {
    fn default() -> TransientOutageConfig {
        TransientOutageConfig {
            per_week: 1.3,
            severity: Dist::LogNormal {
                mu: (0.12f64).ln(),
                sigma: 0.5,
            },
            seed: 0x5EED,
        }
    }
}

/// The full outage timeline over `[start, end]`: anchors plus seeded
/// transients, sorted by date.
pub fn outage_timeline(start: Date, end: Date, config: &TransientOutageConfig) -> Vec<Outage> {
    let mut out: Vec<Outage> = major_outages()
        .into_iter()
        .filter(|o| o.date >= start && o.date <= end)
        .collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let causes = [
        OutageCause::Geometry,
        OutageCause::Weather,
        OutageCause::GeoArcAvoidance,
        OutageCause::Deployment,
    ];
    for date in start.iter_through(end) {
        let n = poisson(&mut rng, config.per_week / 7.0);
        for _ in 0..n {
            let severity = config.severity.sample(&mut rng).clamp(0.02, 0.45);
            out.push(Outage {
                date,
                severity,
                countries: rng.gen_range(1..=3),
                duration_hours: rng.gen_range(0.25..3.0),
                reported_in_press: false,
                cause: causes[rng.gen_range(0..causes.len())],
            });
        }
    }
    out.sort_by_key(|o| o.date);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    fn window() -> (Date, Date) {
        (d(2021, 1, 1), d(2022, 12, 31))
    }

    #[test]
    fn anchors_present_and_classified() {
        let (s, e) = window();
        let tl = outage_timeline(s, e, &TransientOutageConfig::default());
        let majors: Vec<&Outage> = tl.iter().filter(|o| o.is_major()).collect();
        assert_eq!(majors.len(), 3);
        assert_eq!(majors[0].date, d(2022, 1, 7));
        assert_eq!(majors[1].date, d(2022, 4, 22));
        assert_eq!(majors[2].date, d(2022, 8, 30));
        assert!(!majors[1].reported_in_press, "Apr 22 must be unreported");
        assert!(majors[0].reported_in_press && majors[2].reported_in_press);
        assert_eq!(
            majors[1].countries, 14,
            "paper: Redditors from 14 countries"
        );
    }

    #[test]
    fn transients_numerous_but_minor() {
        let (s, e) = window();
        let tl = outage_timeline(s, e, &TransientOutageConfig::default());
        let transients: Vec<&Outage> = tl.iter().filter(|o| !o.is_major()).collect();
        // ~1.3/week over 104 weeks ≈ 135.
        assert!(
            (80..220).contains(&transients.len()),
            "transients {}",
            transients.len()
        );
        assert!(transients.iter().all(|o| o.severity <= 0.45));
        assert!(transients.iter().all(|o| !o.reported_in_press));
        assert!(transients.iter().all(|o| o.countries <= 3));
    }

    #[test]
    fn deterministic_under_seed() {
        let (s, e) = window();
        let a = outage_timeline(s, e, &TransientOutageConfig::default());
        let b = outage_timeline(s, e, &TransientOutageConfig::default());
        assert_eq!(a, b);
        let other = TransientOutageConfig {
            seed: 999,
            ..TransientOutageConfig::default()
        };
        let c = outage_timeline(s, e, &other);
        assert_ne!(a, c);
    }

    #[test]
    fn window_filtering() {
        let tl = outage_timeline(
            d(2021, 1, 1),
            d(2021, 12, 31),
            &TransientOutageConfig::default(),
        );
        assert!(tl.iter().all(|o| o.date.year() == 2021));
        assert!(tl.iter().all(|o| !o.is_major()), "no major outages in 2021");
    }

    #[test]
    fn sorted_by_date() {
        let (s, e) = window();
        let tl = outage_timeline(s, e, &TransientOutageConfig::default());
        assert!(tl.windows(2).all(|w| w[0].date <= w[1].date));
    }
}
