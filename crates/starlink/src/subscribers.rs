//! Starlink subscriber growth (public milestones).
//!
//! Fig. 7 annotates speeds with *"the reported number of Starlink users
//! (whenever public information is available)"*. These are the milestones
//! the paper cites (FCC filings, CEO tweets, press), log-linearly
//! interpolated between reports.

use analytics::time::Date;
use serde::{Deserialize, Serialize};

/// A public subscriber-count report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Milestone {
    /// Report date.
    pub date: Date,
    /// Reported users.
    pub users: f64,
    /// Short source label.
    pub source: &'static str,
}

fn m(y: i32, mo: u8, d: u8, users: f64, source: &'static str) -> Milestone {
    Milestone {
        date: Date::from_ymd(y, mo, d).expect("valid milestone date"),
        users,
        source,
    }
}

/// The embedded milestone list (the paper's citations [24, 33, 50, 52, 63–70]).
pub fn milestones() -> Vec<Milestone> {
    vec![
        m(2021, 2, 4, 10_000.0, "FCC filing: >10,000 users"),
        m(2021, 6, 25, 69_420.0, "CEO tweet: active users threshold"),
        m(2021, 8, 3, 90_000.0, "press: ~90,000 users"),
        m(2022, 1, 15, 145_000.0, "press: >145,000 users"),
        m(2022, 2, 14, 250_000.0, "CEO tweet: >250k terminals"),
        m(2022, 5, 1, 400_000.0, "press: 400,000 subscribers"),
        m(2022, 9, 19, 700_000.0, "press: 700,000 subs"),
        m(
            2022,
            12,
            19,
            1_000_000.0,
            "company: 1,000,000+ active subscribers",
        ),
    ]
}

/// Subscriber-count model with log-linear interpolation.
#[derive(Debug, Clone)]
pub struct SubscriberModel {
    points: Vec<Milestone>,
    /// Monthly growth factor assumed before the first / after the last
    /// milestone.
    edge_growth_per_month: f64,
}

impl Default for SubscriberModel {
    fn default() -> SubscriberModel {
        SubscriberModel::builtin()
    }
}

impl SubscriberModel {
    /// Model over the embedded milestones.
    pub fn builtin() -> SubscriberModel {
        let mut points = milestones();
        points.sort_by_key(|p| p.date);
        SubscriberModel {
            points,
            edge_growth_per_month: 1.18,
        }
    }

    /// The milestone list.
    pub fn milestones(&self) -> &[Milestone] {
        &self.points
    }

    /// Estimated users on `date` (log-linear between milestones,
    /// exponential extrapolation at the edges).
    pub fn users_at(&self, date: Date) -> f64 {
        let pts = &self.points;
        debug_assert!(!pts.is_empty());
        if date <= pts[0].date {
            let months = pts[0].date.days_since(date) as f64 / 30.44;
            return (pts[0].users / self.edge_growth_per_month.powf(months)).max(100.0);
        }
        if date >= pts[pts.len() - 1].date {
            let last = pts[pts.len() - 1];
            let months = date.days_since(last.date) as f64 / 30.44;
            return last.users * self.edge_growth_per_month.powf(months.min(24.0));
        }
        let idx = pts.partition_point(|p| p.date <= date);
        let a = pts[idx - 1];
        let b = pts[idx];
        let span = b.date.days_since(a.date) as f64;
        let t = date.days_since(a.date) as f64 / span;
        (a.users.ln() * (1.0 - t) + b.users.ln() * t).exp()
    }

    /// Users gained in the closed date interval.
    pub fn gained_between(&self, from: Date, to: Date) -> f64 {
        (self.users_at(to) - self.users_at(from)).max(0.0)
    }

    /// The latest milestone at or before `date`, for plot annotation.
    pub fn latest_report(&self, date: Date) -> Option<&Milestone> {
        self.points.iter().rev().find(|p| p.date <= date)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, mo: u8, day: u8) -> Date {
        Date::from_ymd(y, mo, day).unwrap()
    }

    #[test]
    fn milestones_exact_at_report_dates() {
        let m = SubscriberModel::builtin();
        assert!((m.users_at(d(2021, 2, 4)) - 10_000.0).abs() < 1.0);
        assert!((m.users_at(d(2022, 12, 19)) - 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn growth_is_monotone() {
        let m = SubscriberModel::builtin();
        let mut prev = 0.0;
        let mut date = d(2020, 10, 1);
        while date <= d(2023, 1, 31) {
            let u = m.users_at(date);
            assert!(u >= prev, "users shrank on {date}");
            prev = u;
            date = date.offset(7);
        }
    }

    #[test]
    fn paper_quoted_growth_jun_aug_2021() {
        // "Between Jun and Aug'21, 21K new users started using Starlink" —
        // i.e. the reported jump from 69,420 (Jun 25) to ~90,000 (Aug 3).
        let m = SubscriberModel::builtin();
        let gained = m.gained_between(d(2021, 6, 25), d(2021, 8, 3));
        assert!((15_000.0..30_000.0).contains(&gained), "gained {gained}");
    }

    #[test]
    fn ninety_k_to_one_million() {
        // "the number of reported Starlink users increased from 90K to 1M+"
        // between Sep'21 and Dec'22.
        let m = SubscriberModel::builtin();
        let sep21 = m.users_at(d(2021, 9, 1));
        let dec22 = m.users_at(d(2022, 12, 31));
        assert!((80_000.0..120_000.0).contains(&sep21), "sep21 {sep21}");
        assert!(dec22 >= 1_000_000.0, "dec22 {dec22}");
    }

    #[test]
    fn edge_extrapolation_sane() {
        let m = SubscriberModel::builtin();
        let early = m.users_at(d(2020, 6, 1));
        assert!((100.0..10_000.0).contains(&early), "early {early}");
        let late = m.users_at(d(2023, 6, 1));
        assert!(late > 1_000_000.0);
    }

    #[test]
    fn latest_report_annotation() {
        let m = SubscriberModel::builtin();
        assert!(m.latest_report(d(2021, 1, 1)).is_none());
        let r = m.latest_report(d(2022, 3, 1)).unwrap();
        assert_eq!(r.users, 250_000.0);
    }
}
