//! The ground-truth event timeline driving social activity (Fig. 5a).
//!
//! §4.1 ties the three biggest sentiment peaks to dated events: pre-orders
//! opening (2021-02-09, strongly positive), the delivery-delay e-mail
//! (2021-11-24, strongly negative), and the unreported 2022-04-22 outage
//! (negative). The timeline also carries the roaming-discovery thread the
//! paper's emerging-topic pipeline caught *~2 weeks before* the CEO's tweet,
//! plus secondary events (price change, storm losses, expansions) that add
//! realistic texture without dominating the peaks.

use crate::outages::{outage_timeline, Outage, TransientOutageConfig};
use analytics::time::Date;
use serde::{Deserialize, Serialize};

/// Kinds of timeline events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Ordering/availability milestone.
    Availability,
    /// Hardware delivery logistics.
    Delivery,
    /// Service outage (any scale).
    Outage,
    /// New feature quietly enabled (users discover it organically).
    FeatureDiscovery,
    /// Official feature announcement.
    FeatureAnnouncement,
    /// Pricing change.
    Pricing,
    /// Constellation news (launches, storm losses).
    Constellation,
    /// Coverage/market expansion.
    Expansion,
}

/// One ground-truth event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TimelineEvent {
    /// Day of the event.
    pub date: Date,
    /// Event kind.
    pub kind: EventKind,
    /// Sentiment polarity of typical user reaction, in `[-1, 1]`.
    pub polarity: f64,
    /// How much extra posting the event drives (1.0 = doubles the baseline
    /// at the peak day).
    pub buzz: f64,
    /// Days the buzz takes to decay to ~37 %.
    pub decay_days: f64,
    /// Topic tokens the generated posts revolve around.
    pub topics: &'static [&'static str],
    /// Human-readable description.
    pub description: &'static str,
}

fn d(y: i32, m: u8, day: u8) -> Date {
    Date::from_ymd(y, m, day).expect("valid embedded date")
}

/// The named (non-outage) ground-truth events of the study window.
pub fn named_events() -> Vec<TimelineEvent> {
    vec![
        TimelineEvent {
            date: d(2021, 2, 9),
            kind: EventKind::Availability,
            polarity: 0.85,
            buzz: 8.5,
            decay_days: 2.5,
            topics: &["preorder", "order", "deposit", "available"],
            description: "Pre-orders open in the US, Canada, and UK ($99 deposit)",
        },
        TimelineEvent {
            date: d(2021, 11, 24),
            kind: EventKind::Delivery,
            polarity: -0.85,
            buzz: 5.5,
            decay_days: 2.5,
            topics: &["delay", "delivery", "email", "terminal", "preorder"],
            description: "E-mail to pre-order customers: terminal delivery pushed back",
        },
        TimelineEvent {
            date: d(2022, 2, 14),
            kind: EventKind::FeatureDiscovery,
            polarity: 0.7,
            buzz: 0.9,
            decay_days: 6.0,
            topics: &["roaming", "enabled", "moved", "travel"],
            description: "Users discover roaming works outside their home cell",
        },
        TimelineEvent {
            date: d(2022, 3, 3),
            kind: EventKind::FeatureAnnouncement,
            polarity: 0.75,
            buzz: 2.2,
            decay_days: 2.0,
            topics: &["roaming", "mobile", "enabled", "announcement"],
            description: "CEO tweet: 'Mobile roaming enabled'",
        },
        TimelineEvent {
            date: d(2022, 5, 2),
            kind: EventKind::FeatureAnnouncement,
            polarity: 0.5,
            buzz: 1.2,
            decay_days: 2.0,
            topics: &["portability", "roaming", "official", "option"],
            description: "Official Portability option notification",
        },
        TimelineEvent {
            date: d(2022, 2, 8),
            kind: EventKind::Constellation,
            polarity: -0.35,
            buzz: 1.4,
            decay_days: 2.0,
            topics: &["storm", "satellites", "lost", "launch"],
            description: "Geomagnetic storm destroys up to 40 new satellites",
        },
        TimelineEvent {
            date: d(2022, 3, 22),
            kind: EventKind::Pricing,
            polarity: -0.5,
            buzz: 1.6,
            decay_days: 2.5,
            topics: &["price", "increase", "monthly", "cost"],
            description: "Monthly price and hardware cost increase announced",
        },
        TimelineEvent {
            date: d(2021, 8, 3),
            kind: EventKind::Expansion,
            polarity: 0.4,
            buzz: 0.8,
            decay_days: 2.0,
            topics: &["users", "growth", "beta"],
            description: "~90K users milestone reported",
        },
        TimelineEvent {
            date: d(2022, 9, 19),
            kind: EventKind::Expansion,
            polarity: 0.3,
            buzz: 0.7,
            decay_days: 2.0,
            topics: &["subscribers", "growth", "milestone"],
            description: "700K subscribers milestone reported",
        },
    ]
}

/// Convert an outage into its timeline event. Buzz scales with severity and
/// affected-country count; major outages dominate the Fig. 6 spikes.
pub fn outage_event(outage: &Outage) -> TimelineEvent {
    let scale = outage.severity * (1.0 + f64::from(outage.countries) / 15.0);
    TimelineEvent {
        date: outage.date,
        kind: EventKind::Outage,
        polarity: -0.9,
        buzz: 4.5 * scale,
        decay_days: 1.5,
        topics: &["outage", "down", "offline", "disconnect"],
        description: "Service outage",
    }
}

/// The full ground-truth timeline (named events + outages) over a window.
pub fn full_timeline(
    start: Date,
    end: Date,
    transient_config: &TransientOutageConfig,
) -> Vec<TimelineEvent> {
    let mut events: Vec<TimelineEvent> = named_events()
        .into_iter()
        .filter(|e| e.date >= start && e.date <= end)
        .collect();
    for outage in outage_timeline(start, end, transient_config) {
        events.push(outage_event(&outage));
    }
    events.sort_by_key(|e| e.date);
    events
}

/// Buzz multiplier an event contributes on `date` (exponential decay after
/// the event day, nothing before it).
pub fn buzz_on(event: &TimelineEvent, date: Date) -> f64 {
    let days = date.days_since(event.date);
    if days < 0 {
        return 0.0;
    }
    event.buzz * (-(days as f64) / event.decay_days.max(0.1)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_named_events_match_paper_dates() {
        let events = named_events();
        let pre = events
            .iter()
            .find(|e| e.kind == EventKind::Availability)
            .unwrap();
        assert_eq!(pre.date, d(2021, 2, 9));
        assert!(pre.polarity > 0.7);
        let delay = events
            .iter()
            .find(|e| e.kind == EventKind::Delivery)
            .unwrap();
        assert_eq!(delay.date, d(2021, 11, 24));
        assert!(delay.polarity < -0.7);
    }

    #[test]
    fn roaming_discovery_precedes_tweet_by_two_plus_weeks() {
        let events = named_events();
        let discovery = events
            .iter()
            .find(|e| e.kind == EventKind::FeatureDiscovery)
            .unwrap();
        let tweet = events
            .iter()
            .find(|e| e.kind == EventKind::FeatureAnnouncement && e.description.contains("CEO"))
            .unwrap();
        let lead = tweet.date.days_since(discovery.date);
        assert!(lead >= 14, "discovery lead {lead} days");
        assert!(discovery.topics.contains(&"roaming"));
    }

    #[test]
    fn full_timeline_sorted_and_windowed() {
        let tl = full_timeline(
            d(2022, 1, 1),
            d(2022, 12, 31),
            &TransientOutageConfig::default(),
        );
        assert!(tl.windows(2).all(|w| w[0].date <= w[1].date));
        assert!(tl.iter().all(|e| e.date.year() == 2022));
        assert!(tl.iter().any(|e| e.kind == EventKind::Outage));
        assert!(tl.iter().any(|e| e.kind == EventKind::FeatureDiscovery));
    }

    #[test]
    fn major_outage_buzz_dominates_transients() {
        let tl = full_timeline(
            d(2022, 1, 1),
            d(2022, 12, 31),
            &TransientOutageConfig::default(),
        );
        let outages: Vec<&TimelineEvent> =
            tl.iter().filter(|e| e.kind == EventKind::Outage).collect();
        let max_buzz = outages.iter().map(|e| e.buzz).fold(0.0, f64::max);
        let jan7 = outages.iter().find(|e| e.date == d(2022, 1, 7)).unwrap();
        assert!(
            jan7.buzz >= max_buzz * 0.9,
            "Jan 7 should be among the largest spikes"
        );
    }

    #[test]
    fn buzz_decays_after_event() {
        let e = &named_events()[0];
        assert_eq!(buzz_on(e, e.date.offset(-1)), 0.0);
        let day0 = buzz_on(e, e.date);
        let day3 = buzz_on(e, e.date.offset(3));
        let day10 = buzz_on(e, e.date.offset(10));
        assert!(day0 > day3 && day3 > day10);
        assert!(day10 < day0 * 0.1);
    }
}
