//! The capacity/demand speed model behind Fig. 7.
//!
//! The paper explains the downlink-speed evolution mechanistically: speeds
//! rose while launches outpaced user growth (Jan–Sep '21), dipped sharply
//! when ~21 K users joined during the Jun–Aug '21 launch gap, and then
//! declined steadily as subscribers grew from 90 K to 1 M+ while 37 batches
//! could not keep up. This module turns exactly those public series
//! ([`crate::launches`], [`crate::subscribers`]) into a per-user median
//! downlink:
//!
//! ```text
//! median(t) = maturity(t) · (1 − crunch(t)) · MAX · S(t) / (S(t) + k·D(t))
//! ```
//!
//! * `S(t)` — usable satellites (launches, orbit-raise delay, attrition);
//! * `D(t)` — subscriber demand (users in thousands);
//! * `maturity(t)` — early-network ramp (ground stations, coverage,
//!   scheduler software) saturating in mid-2021;
//! * `crunch(t)` — a demand-concentration penalty centred on the Jun–Aug '21
//!   launch gap: new users joined cells that were already subscribed, so
//!   congestion was worse than the global supply/demand ratio suggests.
//!   (Documented substitution: the paper observes the dip; we model its
//!   accepted cause.)

use crate::launches::LaunchSchedule;
use crate::subscribers::SubscriberModel;
use analytics::time::Date;
use serde::{Deserialize, Serialize};

/// Tunable constants of the speed model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedModelParams {
    /// Asymptotic uncongested median downlink (Mbps).
    pub max_speed_mbps: f64,
    /// Demand weight per thousand users.
    pub demand_per_kuser: f64,
    /// Date the maturity ramp starts.
    pub maturity_start: Date,
    /// Months for the maturity ramp to saturate.
    pub maturity_months: f64,
    /// Maturity floor at ramp start (fraction of full efficiency).
    pub maturity_floor: f64,
    /// Centre of the mid-2021 demand-concentration crunch.
    pub crunch_center: Date,
    /// Peak depth of the crunch (fraction of speed lost).
    pub crunch_depth: f64,
    /// Gaussian width of the crunch (days).
    pub crunch_width_days: f64,
    /// Median uplink as a fraction of downlink.
    pub uplink_fraction: f64,
    /// Median latency (ms) when uncongested.
    pub base_latency_ms: f64,
}

impl Default for SpeedModelParams {
    fn default() -> SpeedModelParams {
        SpeedModelParams {
            max_speed_mbps: 125.0,
            demand_per_kuser: 5.14,
            maturity_start: Date::from_ymd(2021, 1, 1).expect("valid date"),
            maturity_months: 6.5,
            maturity_floor: 0.55,
            crunch_center: Date::from_ymd(2021, 7, 20).expect("valid date"),
            crunch_depth: 0.15,
            crunch_width_days: 45.0,
            uplink_fraction: 0.12,
            base_latency_ms: 40.0,
        }
    }
}

/// The Fig. 7 speed model.
#[derive(Debug, Clone, Default)]
pub struct SpeedModel {
    /// Launch schedule in effect.
    pub schedule: LaunchSchedule,
    /// Subscriber model in effect.
    pub subscribers: SubscriberModel,
    /// Constants.
    pub params: SpeedModelParams,
}

impl SpeedModel {
    /// Maturity factor in `[floor, 1]`.
    pub fn maturity(&self, date: Date) -> f64 {
        let p = &self.params;
        let months = date.days_since(p.maturity_start) as f64 / 30.44;
        let t = (months / p.maturity_months).clamp(0.0, 1.0);
        p.maturity_floor + (1.0 - p.maturity_floor) * t
    }

    /// Crunch penalty in `[0, depth]`.
    pub fn crunch(&self, date: Date) -> f64 {
        let p = &self.params;
        let d = date.days_since(p.crunch_center) as f64 / p.crunch_width_days;
        p.crunch_depth * (-0.5 * d * d).exp()
    }

    /// Supply/demand congestion ratio `S/(S + kD)` in `(0, 1]`.
    pub fn congestion_ratio(&self, date: Date) -> f64 {
        let supply = self.schedule.usable_by(date).max(1.0);
        let demand_k = self.subscribers.users_at(date) / 1000.0;
        supply / (supply + self.params.demand_per_kuser * demand_k)
    }

    /// The modelled median downlink (Mbps) on `date`.
    pub fn median_downlink(&self, date: Date) -> f64 {
        self.maturity(date)
            * (1.0 - self.crunch(date))
            * self.params.max_speed_mbps
            * self.congestion_ratio(date)
    }

    /// The modelled median uplink (Mbps) on `date`.
    pub fn median_uplink(&self, date: Date) -> f64 {
        (self.params.uplink_fraction * self.median_downlink(date)).max(1.0)
    }

    /// The modelled median latency (ms): rises as congestion grows.
    pub fn median_latency(&self, date: Date) -> f64 {
        let ratio = self.congestion_ratio(date);
        self.params.base_latency_ms * (0.7 + 0.9 * (1.0 - ratio))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analytics::time::Month;

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    fn model() -> SpeedModel {
        SpeedModel::default()
    }

    fn monthly_median(m: &SpeedModel, month: Month) -> f64 {
        m.median_downlink(Date::from_ymd(month.year, month.month, 15).unwrap())
    }

    #[test]
    fn speeds_rise_jan_to_mid_2021() {
        let m = model();
        let jan = monthly_median(&m, Month::new(2021, 1).unwrap());
        let may = monthly_median(&m, Month::new(2021, 5).unwrap());
        assert!((50.0..80.0).contains(&jan), "Jan'21 median {jan}");
        assert!(may > jan * 1.25, "May'21 {may} vs Jan'21 {jan}");
    }

    #[test]
    fn jun_aug_2021_dip() {
        // Paper: "sharp decrease in median speeds" while 21K users joined
        // with no launches.
        let m = model();
        let may = monthly_median(&m, Month::new(2021, 5).unwrap());
        let jul = monthly_median(&m, Month::new(2021, 7).unwrap());
        let sep = monthly_median(&m, Month::new(2021, 9).unwrap());
        assert!(
            jul < may * 0.97,
            "Jul'21 {jul} should dip below May'21 {may}"
        );
        assert!(sep > jul, "Sep'21 {sep} should recover over Jul'21 {jul}");
    }

    #[test]
    fn steady_decline_sep21_to_dec22() {
        let m = model();
        let sep21 = monthly_median(&m, Month::new(2021, 9).unwrap());
        let jun22 = monthly_median(&m, Month::new(2022, 6).unwrap());
        let dec22 = monthly_median(&m, Month::new(2022, 12).unwrap());
        assert!(jun22 < sep21, "{jun22} vs {sep21}");
        assert!(dec22 < jun22, "{dec22} vs {jun22}");
        assert!(
            dec22 < sep21 * 0.7,
            "Dec'22 {dec22} should be well below Sep'21 {sep21}"
        );
        assert!((35.0..70.0).contains(&dec22), "Dec'22 median {dec22}");
    }

    #[test]
    fn dec21_beats_apr21_the_fulcrum_premise() {
        // §4.2: "downlink speed is higher in Dec'21 than Apr'21".
        let m = model();
        let apr21 = monthly_median(&m, Month::new(2021, 4).unwrap());
        let dec21 = monthly_median(&m, Month::new(2021, 12).unwrap());
        assert!(dec21 > apr21, "Dec'21 {dec21} vs Apr'21 {apr21}");
    }

    #[test]
    fn mar22_to_dec22_decline_premise() {
        // §4.2: "downlink speeds decrease between Mar'22 and Dec'22".
        let m = model();
        let mar22 = monthly_median(&m, Month::new(2022, 3).unwrap());
        let dec22 = monthly_median(&m, Month::new(2022, 12).unwrap());
        assert!(dec22 < mar22, "{dec22} vs {mar22}");
    }

    #[test]
    fn auxiliary_metrics_sane() {
        let m = model();
        for (y, mo) in [(2021, 3), (2021, 10), (2022, 6), (2022, 12)] {
            let date = d(y, mo, 15);
            let down = m.median_downlink(date);
            let up = m.median_uplink(date);
            let lat = m.median_latency(date);
            assert!(up < down, "uplink {up} < downlink {down}");
            assert!(up >= 1.0);
            assert!((20.0..120.0).contains(&lat), "latency {lat}");
        }
    }

    #[test]
    fn crunch_is_local() {
        let m = model();
        assert!(m.crunch(d(2021, 7, 20)) > 0.1);
        assert!(m.crunch(d(2021, 1, 15)) < 0.01);
        assert!(m.crunch(d(2022, 6, 15)) < 0.01);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn median_positive_and_bounded(days in 0i32..1095) {
                let m = SpeedModel::default();
                let date = Date::from_ymd(2020, 6, 1).unwrap().offset(days);
                let v = m.median_downlink(date);
                prop_assert!(v > 0.0 && v <= m.params.max_speed_mbps, "median {v}");
                prop_assert!(m.median_uplink(date) < v.max(10.0));
                let ratio = m.congestion_ratio(date);
                prop_assert!((0.0..=1.0).contains(&ratio));
            }

            #[test]
            fn crunch_bounded(days in 0i32..1095) {
                let m = SpeedModel::default();
                let date = Date::from_ymd(2020, 6, 1).unwrap().offset(days);
                let c = m.crunch(date);
                prop_assert!((0.0..=m.params.crunch_depth).contains(&c));
            }
        }
    }

    #[test]
    fn maturity_ramp_bounds() {
        let m = model();
        assert!((m.maturity(d(2020, 6, 1)) - 0.55).abs() < 1e-9);
        assert!((m.maturity(d(2022, 1, 1)) - 1.0).abs() < 0.05);
        let mid = m.maturity(d(2021, 3, 15));
        assert!(mid > 0.55 && mid < 1.0);
    }
}
