//! Individual speed-test measurements.
//!
//! Fig. 7's raw material is ~1750 speed-test screenshots shared by
//! Redditors. One shared result is a noisy draw around the network-wide
//! median of its day: user terminals differ (obstructions, cell load,
//! weather), so per-measurement spread is wide while monthly medians stay
//! stable — which is why the paper's 95 %/90 % subsample check works.

use crate::capacity::SpeedModel;
use analytics::dist::{Dist, Sampler};
use analytics::time::Date;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One speed-test result as a user would screenshot it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedTestResult {
    /// Measurement date.
    pub date: Date,
    /// Download speed (Mbps).
    pub downlink_mbps: f64,
    /// Upload speed (Mbps).
    pub uplink_mbps: f64,
    /// Latency / ping (ms).
    pub latency_ms: f64,
}

/// Per-measurement multiplicative spread around the daily median
/// (log-normal sigma as a multiplier).
pub const MEASUREMENT_SPREAD: f64 = 1.45;

/// Draw one measurement on `date` from the network model.
pub fn sample_speed_test<R: Rng + ?Sized>(
    rng: &mut R,
    model: &SpeedModel,
    date: Date,
) -> SpeedTestResult {
    let down_med = model.median_downlink(date).max(1.0);
    let up_med = model.median_uplink(date).max(0.5);
    let lat_med = model.median_latency(date).max(15.0);
    let down = Dist::log_normal_median(down_med, MEASUREMENT_SPREAD)
        .sample(rng)
        .clamp(0.5, 500.0);
    let up = Dist::log_normal_median(up_med, 1.35)
        .sample(rng)
        .clamp(0.2, 60.0);
    let lat = Dist::log_normal_median(lat_med, 1.3)
        .sample(rng)
        .clamp(15.0, 400.0);
    SpeedTestResult {
        date,
        downlink_mbps: down,
        uplink_mbps: up,
        latency_ms: lat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    #[test]
    fn measurements_center_on_model_median() {
        let model = SpeedModel::default();
        let mut rng = StdRng::seed_from_u64(4);
        let date = d(2021, 9, 15);
        let mut downs: Vec<f64> = (0..4000)
            .map(|_| sample_speed_test(&mut rng, &model, date).downlink_mbps)
            .collect();
        downs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = downs[downs.len() / 2];
        let model_med = model.median_downlink(date);
        assert!(
            (med - model_med).abs() / model_med < 0.08,
            "{med} vs {model_med}"
        );
    }

    #[test]
    fn physically_sane_values() {
        let model = SpeedModel::default();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2000 {
            let s = sample_speed_test(&mut rng, &model, d(2022, 6, 1));
            assert!((0.5..=500.0).contains(&s.downlink_mbps));
            assert!((0.2..=60.0).contains(&s.uplink_mbps));
            assert!((15.0..=400.0).contains(&s.latency_ms));
        }
    }

    #[test]
    fn spread_is_wide_but_not_crazy() {
        let model = SpeedModel::default();
        let mut rng = StdRng::seed_from_u64(6);
        let date = d(2022, 3, 15);
        let downs: Vec<f64> = (0..4000)
            .map(|_| sample_speed_test(&mut rng, &model, date).downlink_mbps)
            .collect();
        let p10 = analytics::percentile(&downs, 10.0).unwrap();
        let p90 = analytics::percentile(&downs, 90.0).unwrap();
        assert!(p90 / p10 > 1.8, "spread too narrow: {p10}..{p90}");
        assert!(p90 / p10 < 8.0, "spread too wide: {p10}..{p90}");
    }
}
