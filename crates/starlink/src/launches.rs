//! The Starlink launch schedule (public data).
//!
//! Fig. 7 of the paper annotates observed downlink speeds with *"the number
//! of Starlink launches"*, citing public trackers (satellitemap.space,
//! Jonathan's Space Pages, Wikipedia). This module embeds the v1.0/v1.5
//! launch history relevant to the Jan '21 – Dec '22 study window, including
//! the facts the paper leans on:
//!
//! * 14 launches with ~60 satellites each between Jan and Sep 2021;
//! * **no launches between Jun and Aug 2021** (while ~21 K users joined);
//! * 37 launch batches between Sep 2021 and Dec 2022.
//!
//! Dates/counts are approximate public figures — the analyses only consume
//! monthly aggregates.

use analytics::time::{Date, Month};
use serde::{Deserialize, Serialize};

/// One launch batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Launch {
    /// Launch date.
    pub date: Date,
    /// Satellites aboard.
    pub satellites: u32,
}

fn l(y: i32, m: u8, d: u8, satellites: u32) -> Launch {
    Launch {
        date: Date::from_ymd(y, m, d).expect("valid embedded launch date"),
        satellites,
    }
}

/// The embedded launch history (2019-05 through 2022-12).
pub fn launch_history() -> Vec<Launch> {
    vec![
        // 2019–2020 build-out (pre-study; seeds the constellation size).
        l(2019, 5, 24, 60),
        l(2019, 11, 11, 60),
        l(2020, 1, 7, 60),
        l(2020, 1, 29, 60),
        l(2020, 2, 17, 60),
        l(2020, 3, 18, 60),
        l(2020, 4, 22, 60),
        l(2020, 6, 4, 60),
        l(2020, 6, 13, 58),
        l(2020, 8, 7, 57),
        l(2020, 8, 18, 58),
        l(2020, 9, 3, 60),
        l(2020, 10, 6, 60),
        l(2020, 10, 18, 60),
        l(2020, 10, 24, 60),
        l(2020, 11, 25, 60),
        // Jan–Sep 2021: 14 launches (note the Jun–Aug gap).
        l(2021, 1, 20, 60),
        l(2021, 2, 4, 60),
        l(2021, 2, 16, 60),
        l(2021, 3, 4, 60),
        l(2021, 3, 11, 60),
        l(2021, 3, 14, 60),
        l(2021, 3, 24, 60),
        l(2021, 4, 7, 60),
        l(2021, 4, 29, 60),
        l(2021, 5, 4, 60),
        l(2021, 5, 9, 60),
        l(2021, 5, 15, 52),
        l(2021, 5, 26, 60),
        l(2021, 9, 14, 51),
        // Sep 2021 – Dec 2022: 37 batches (incl. the Sep 14 one above? No —
        // counted from after Sep'21 speed peak: the 36 below plus Sep 14).
        l(2021, 11, 13, 53),
        l(2021, 12, 2, 48),
        l(2021, 12, 18, 52),
        l(2022, 1, 6, 49),
        l(2022, 1, 19, 49),
        l(2022, 2, 3, 49),
        l(2022, 2, 21, 46),
        l(2022, 2, 25, 50),
        l(2022, 3, 3, 47),
        l(2022, 3, 9, 48),
        l(2022, 3, 19, 53),
        l(2022, 4, 21, 53),
        l(2022, 4, 29, 53),
        l(2022, 5, 6, 53),
        l(2022, 5, 13, 53),
        l(2022, 5, 14, 53),
        l(2022, 5, 18, 53),
        l(2022, 6, 17, 53),
        l(2022, 7, 7, 53),
        l(2022, 7, 11, 46),
        l(2022, 7, 17, 53),
        l(2022, 7, 22, 46),
        l(2022, 7, 24, 53),
        l(2022, 8, 9, 52),
        l(2022, 8, 12, 46),
        l(2022, 8, 19, 53),
        l(2022, 8, 27, 54),
        l(2022, 8, 31, 46),
        l(2022, 9, 4, 51),
        l(2022, 9, 10, 34),
        l(2022, 9, 18, 54),
        l(2022, 9, 24, 52),
        l(2022, 10, 5, 52),
        l(2022, 10, 20, 54),
        l(2022, 10, 28, 53),
        l(2022, 12, 17, 54),
    ]
}

/// Days a freshly-launched batch takes to raise orbit and enter service.
pub const ORBIT_RAISE_DAYS: i32 = 60;

/// Fraction of launched satellites that never enter (or drop out of)
/// service — failures, deorbits, the Feb '22 geomagnetic-storm losses.
pub const ATTRITION: f64 = 0.04;

/// Launch-schedule queries used by the capacity model and Fig. 7 annotation.
#[derive(Debug, Clone)]
pub struct LaunchSchedule {
    launches: Vec<Launch>,
}

impl Default for LaunchSchedule {
    fn default() -> LaunchSchedule {
        LaunchSchedule::builtin()
    }
}

impl LaunchSchedule {
    /// Schedule over the embedded history.
    pub fn builtin() -> LaunchSchedule {
        let mut launches = launch_history();
        launches.sort_by_key(|l| l.date);
        LaunchSchedule { launches }
    }

    /// Schedule over a custom launch list (for what-if planning, §6).
    pub fn custom(mut launches: Vec<Launch>) -> LaunchSchedule {
        launches.sort_by_key(|l| l.date);
        LaunchSchedule { launches }
    }

    /// All launches, sorted by date.
    pub fn launches(&self) -> &[Launch] {
        &self.launches
    }

    /// Launches whose date falls inside `month`.
    pub fn launches_in_month(&self, month: Month) -> usize {
        self.launches
            .iter()
            .filter(|l| l.date.month() == month)
            .count()
    }

    /// Total satellites launched up to and including `date`.
    pub fn launched_by(&self, date: Date) -> u32 {
        self.launches
            .iter()
            .filter(|l| l.date <= date)
            .map(|l| l.satellites)
            .sum()
    }

    /// Satellites *in service* on `date`: launched at least
    /// [`ORBIT_RAISE_DAYS`] earlier, minus attrition.
    pub fn usable_by(&self, date: Date) -> f64 {
        let raised: u32 = self
            .launches
            .iter()
            .filter(|l| l.date.offset(ORBIT_RAISE_DAYS) <= date)
            .map(|l| l.satellites)
            .sum();
        f64::from(raised) * (1.0 - ATTRITION)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    #[test]
    fn fourteen_launches_jan_to_sep_2021() {
        let s = LaunchSchedule::builtin();
        let n = s
            .launches()
            .iter()
            .filter(|l| l.date >= d(2021, 1, 1) && l.date <= d(2021, 9, 30))
            .count();
        assert_eq!(n, 14, "paper: 14 launches Jan–Sep 2021");
    }

    #[test]
    fn no_launches_jun_through_aug_2021() {
        let s = LaunchSchedule::builtin();
        let n = s
            .launches()
            .iter()
            .filter(|l| l.date >= d(2021, 6, 1) && l.date <= d(2021, 8, 31))
            .count();
        assert_eq!(
            n, 0,
            "paper: 21K users joined Jun–Aug 2021 with no launches"
        );
    }

    #[test]
    fn thirty_seven_batches_sep21_to_dec22() {
        let s = LaunchSchedule::builtin();
        let n = s
            .launches()
            .iter()
            .filter(|l| l.date >= d(2021, 9, 1) && l.date <= d(2022, 12, 31))
            .count();
        assert_eq!(n, 37, "paper: 37 batches between Sep'21 and Dec'22");
    }

    #[test]
    fn usable_lags_launched() {
        let s = LaunchSchedule::builtin();
        let date = d(2021, 1, 1);
        assert!(s.usable_by(date) < f64::from(s.launched_by(date)));
        // A launch on 2021-01-20 is not usable on 2021-02-01 but is by May.
        let before = s.usable_by(d(2021, 2, 1));
        let after = s.usable_by(d(2021, 5, 1));
        assert!(after > before + 100.0);
    }

    #[test]
    fn constellation_grows_monotonically() {
        let s = LaunchSchedule::builtin();
        let mut prev = 0.0;
        let mut m = Month::new(2021, 1).unwrap();
        let end = Month::new(2022, 12).unwrap();
        while m <= end {
            let u = s.usable_by(m.last_day());
            assert!(u >= prev, "constellation shrank in {m}");
            prev = u;
            m = m.next();
        }
        assert!(prev > 2500.0, "end-2022 usable fleet {prev}");
    }

    #[test]
    fn monthly_launch_counts() {
        let s = LaunchSchedule::builtin();
        assert_eq!(s.launches_in_month(Month::new(2021, 3).unwrap()), 4);
        assert_eq!(s.launches_in_month(Month::new(2021, 7).unwrap()), 0);
        assert!(s.launches_in_month(Month::new(2022, 7).unwrap()) >= 4);
    }

    #[test]
    fn custom_schedule_sorted() {
        let s = LaunchSchedule::custom(vec![l(2023, 5, 1, 20), l(2023, 1, 1, 10)]);
        assert!(s.launches()[0].date < s.launches()[1].date);
        assert_eq!(s.launched_by(d(2023, 6, 1)), 30);
    }
}
