//! Constellation shells, coverage, and the §6 deployment planner.
//!
//! §6 of the paper asks: *"could SpaceX change Starlink deployment plans
//! (which LEO satellite shell to deploy next) given the current deployment,
//! footprint, and user sentiment?"* This module gives that question concrete
//! machinery: the Gen-1 shell set, a latitude-band population/coverage
//! model, and a planner that ranks shells by the marginal demand they would
//! serve — optionally reweighted by regional user-sentiment scores, which is
//! exactly the USaaS-in-the-loop scenario the paper sketches.

use serde::{Deserialize, Serialize};

/// One orbital shell of the constellation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Shell {
    /// Shell label.
    pub name: &'static str,
    /// Altitude (km).
    pub altitude_km: f64,
    /// Inclination (degrees) — bounds the served latitude band.
    pub inclination_deg: f64,
    /// Planned satellites.
    pub planned: u32,
    /// Currently deployed satellites.
    pub deployed: u32,
}

impl Shell {
    /// Deployment completion in `[0, 1]`.
    pub fn completion(&self) -> f64 {
        if self.planned == 0 {
            1.0
        } else {
            f64::from(self.deployed.min(self.planned)) / f64::from(self.planned)
        }
    }

    /// Remaining satellites to deploy.
    pub fn remaining(&self) -> u32 {
        self.planned.saturating_sub(self.deployed)
    }
}

/// The Starlink Gen-1 shell set, deployment state ≈ late 2022.
pub fn gen1_shells() -> Vec<Shell> {
    vec![
        Shell {
            name: "Shell 1 (53.0°, 550 km)",
            altitude_km: 550.0,
            inclination_deg: 53.0,
            planned: 1584,
            deployed: 1584,
        },
        Shell {
            name: "Shell 4 (53.2°, 540 km)",
            altitude_km: 540.0,
            inclination_deg: 53.2,
            planned: 1584,
            deployed: 1100,
        },
        Shell {
            name: "Shell 2 (70.0°, 570 km)",
            altitude_km: 570.0,
            inclination_deg: 70.0,
            planned: 720,
            deployed: 250,
        },
        Shell {
            name: "Shell 3 (97.6°, 560 km)",
            altitude_km: 560.0,
            inclination_deg: 97.6,
            planned: 348,
            deployed: 80,
        },
        Shell {
            name: "Shell 5 (97.6°, 560 km)",
            altitude_km: 560.0,
            inclination_deg: 97.6,
            planned: 172,
            deployed: 0,
        },
    ]
}

/// Coarse share of world population per 10° latitude band (absolute
/// latitude, band `i` covers `[10·i, 10·(i+1))`°). Sums to 1.
pub const POPULATION_BY_LAT_BAND: [f64; 9] =
    [0.18, 0.21, 0.24, 0.17, 0.12, 0.06, 0.015, 0.005, 0.0];

/// Fraction of the population a shell's inclination can serve: all bands up
/// to the inclination (a satellite at inclination *i* covers latitudes up to
/// roughly *i* plus a few degrees of footprint).
pub fn population_reach(inclination_deg: f64) -> f64 {
    let reach_deg = (inclination_deg + 5.0).min(90.0);
    let full_bands = (reach_deg / 10.0).floor() as usize;
    let partial = (reach_deg / 10.0) - full_bands as f64;
    let mut total = 0.0;
    for (i, share) in POPULATION_BY_LAT_BAND.iter().enumerate() {
        if i < full_bands {
            total += share;
        } else if i == full_bands {
            total += share * partial;
        }
    }
    total.min(1.0)
}

/// Per-latitude-band demand signal used by the planner. Values are relative
/// weights; the USaaS pipeline feeds negative-sentiment intensity here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionalDemand {
    /// Weight per 10° latitude band (same layout as
    /// [`POPULATION_BY_LAT_BAND`]).
    pub band_weights: [f64; 9],
}

impl Default for RegionalDemand {
    /// Population-proportional demand.
    fn default() -> RegionalDemand {
        RegionalDemand {
            band_weights: POPULATION_BY_LAT_BAND,
        }
    }
}

impl RegionalDemand {
    /// Demand served *per satellite* of a shell with the given inclination.
    ///
    /// A satellite on an inclined circular orbit spends its time spread over
    /// latitudes `[-i, i]` with dwell density `∝ 1/√(1 − (lat/i)²)` (it
    /// lingers near the turning latitude). We integrate that dwell time per
    /// 10° band, normalise to 1, and take the demand-weighted sum — so a 53°
    /// satellite concentrates capacity where people live, while a polar
    /// satellite thins its time across empty high latitudes but is the only
    /// way to serve them at all.
    pub fn served_per_satellite(&self, inclination_deg: f64) -> f64 {
        let reach = (inclination_deg + 5.0).min(90.0);
        let total_angle = std::f64::consts::FRAC_PI_2; // asin(1)
        let mut served = 0.0;
        for (i, w) in self.band_weights.iter().enumerate() {
            let lo = (10.0 * i as f64).min(reach) / reach;
            let hi = (10.0 * (i + 1) as f64).min(reach) / reach;
            if hi <= lo {
                continue;
            }
            let share = (hi.asin() - lo.asin()) / total_angle;
            served += w * share;
        }
        served
    }
}

/// A ranked deployment recommendation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Shell name.
    pub shell: &'static str,
    /// Utility score (higher = deploy sooner).
    pub score: f64,
    /// Remaining satellites in the shell.
    pub remaining: u32,
}

/// The §6 deployment planner.
#[derive(Debug, Clone)]
pub struct DeploymentPlanner {
    shells: Vec<Shell>,
}

impl DeploymentPlanner {
    /// Planner over a shell set.
    pub fn new(shells: Vec<Shell>) -> DeploymentPlanner {
        DeploymentPlanner { shells }
    }

    /// Planner over the Gen-1 state.
    pub fn gen1() -> DeploymentPlanner {
        DeploymentPlanner::new(gen1_shells())
    }

    /// The shells under management.
    pub fn shells(&self) -> &[Shell] {
        &self.shells
    }

    /// Rank shells by the total marginal utility of finishing them:
    /// `demand served per satellite × remaining satellites` — zero for
    /// completed shells.
    pub fn rank(&self, demand: &RegionalDemand) -> Vec<Recommendation> {
        let mut recs: Vec<Recommendation> = self
            .shells
            .iter()
            .map(|s| Recommendation {
                shell: s.name,
                score: demand.served_per_satellite(s.inclination_deg) * f64::from(s.remaining()),
                remaining: s.remaining(),
            })
            .collect();
        recs.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        recs
    }

    /// The single best next shell, if any remains incomplete.
    pub fn recommend_next(&self, demand: &RegionalDemand) -> Option<Recommendation> {
        self.rank(demand)
            .into_iter()
            .find(|r| r.remaining > 0 && r.score > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_shares_sum_to_one() {
        let total: f64 = POPULATION_BY_LAT_BAND.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reach_monotone_in_inclination() {
        let mut prev = 0.0;
        for inc in [30.0, 53.0, 70.0, 97.6] {
            let r = population_reach(inc);
            assert!(r >= prev, "reach not monotone at {inc}");
            prev = r;
        }
        assert!(population_reach(97.6) > 0.99);
        assert!(population_reach(53.0) > 0.8, "53° serves most of humanity");
    }

    #[test]
    fn completed_shells_never_recommended() {
        let planner = DeploymentPlanner::gen1();
        let rec = planner.recommend_next(&RegionalDemand::default()).unwrap();
        assert_ne!(rec.shell, "Shell 1 (53.0°, 550 km)");
        assert!(rec.remaining > 0);
    }

    #[test]
    fn population_demand_prefers_mid_inclination() {
        // Under population-proportional demand, a mid-inclination shell wins
        // (53–70° reaches nearly everyone and those shells are incomplete);
        // the polar shells only win when high-latitude demand dominates.
        let planner = DeploymentPlanner::gen1();
        let rec = planner.recommend_next(&RegionalDemand::default()).unwrap();
        assert!(
            rec.shell.contains("Shell 4") || rec.shell.contains("Shell 2"),
            "got {}",
            rec.shell
        );
        assert!(
            !rec.shell.contains("97.6"),
            "polar shell should not win: {}",
            rec.shell
        );
    }

    #[test]
    fn polar_sentiment_shifts_recommendation() {
        // If USaaS reports intense dissatisfaction at high latitudes, the
        // planner pivots to the polar shells.
        let planner = DeploymentPlanner::gen1();
        let mut demand = RegionalDemand {
            band_weights: [0.0; 9],
        };
        demand.band_weights[6] = 0.5; // 60–70°
        demand.band_weights[7] = 0.5; // 70–80°
        let rec = planner.recommend_next(&demand).unwrap();
        assert!(
            rec.shell.contains("97.6") || rec.shell.contains("70.0"),
            "expected high-inclination shell, got {}",
            rec.shell
        );
    }

    #[test]
    fn rank_is_sorted_and_complete() {
        let planner = DeploymentPlanner::gen1();
        let ranks = planner.rank(&RegionalDemand::default());
        assert_eq!(ranks.len(), planner.shells().len());
        assert!(ranks.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn shell_accounting() {
        let s = Shell {
            name: "t",
            altitude_km: 550.0,
            inclination_deg: 53.0,
            planned: 100,
            deployed: 25,
        };
        assert_eq!(s.completion(), 0.25);
        assert_eq!(s.remaining(), 75);
        let done = Shell {
            name: "d",
            altitude_km: 550.0,
            inclination_deg: 53.0,
            planned: 0,
            deployed: 0,
        };
        assert_eq!(done.completion(), 1.0);
    }
}
