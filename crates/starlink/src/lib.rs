//! # starlink
//!
//! LEO-network substrate for the §4 reproduction: the public data the paper
//! annotates Fig. 7 with (launch schedule, subscriber milestones), a
//! capacity/demand model deriving median downlink speeds from them, the
//! ground-truth outage and event timelines that drive the social simulation,
//! a speed-test measurement sampler, and the §6 deployment planner
//! ("which shell to deploy next, given user sentiment").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod constellation;
pub mod events;
pub mod launches;
pub mod outages;
pub mod speedtest;
pub mod subscribers;

pub use capacity::{SpeedModel, SpeedModelParams};
pub use constellation::{DeploymentPlanner, RegionalDemand, Shell};
pub use events::{buzz_on, full_timeline, named_events, EventKind, TimelineEvent};
pub use launches::{Launch, LaunchSchedule};
pub use outages::{major_outages, outage_timeline, Outage, OutageCause, TransientOutageConfig};
pub use speedtest::{sample_speed_test, SpeedTestResult};
pub use subscribers::{Milestone, SubscriberModel};
