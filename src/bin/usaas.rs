//! `usaas` — the command-line face of the reproduction.
//!
//! ```text
//! usaas simulate-calls  [--calls N] [--seed S] [--out sessions.csv]
//! usaas simulate-forum  [--seed S] [--out posts.csv]
//! usaas digest          [--calls N]
//! usaas early           [--calls N]
//! usaas serve           [--dir D] [--ticks N] [--tick-ms MS] …
//! usaas help
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency budget has no
//! CLI crate, and the grammar is four subcommands with numeric flags).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::process::ExitCode;

use conference::dataset::{generate, DatasetConfig};
use conference::records::NetworkMetric;
use social::generator::{generate as gen_forum, ForumConfig};
use usaas::digest::DigestBuilder;
use usaas::early::EarlyQualityMonitor;

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = &args[i];
        if !key.starts_with("--") {
            return Err(format!("unexpected argument '{key}'"));
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag {key} needs a value"))?;
        out.insert(key.trim_start_matches("--").to_string(), value.clone());
        i += 2;
    }
    Ok(out)
}

fn flag_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects an integer, got '{v}'")),
    }
}

fn flag_u64(flags: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects an integer, got '{v}'")),
    }
}

fn write_out(
    flags: &HashMap<String, String>,
    default_name: &str,
    content: &str,
) -> Result<(), String> {
    let path = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| default_name.to_string());
    std::fs::write(&path, content).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote {path}");
    Ok(())
}

fn cmd_simulate_calls(flags: HashMap<String, String>) -> Result<(), String> {
    let calls = flag_usize(&flags, "calls", 2000)?;
    let seed = flag_u64(&flags, "seed", 0xC11)?;
    eprintln!("simulating {calls} calls (seed {seed})…");
    let ds = generate(&DatasetConfig {
        calls,
        seed,
        ..DatasetConfig::default()
    });
    let mut csv = String::from(
        "call_id,user_id,date,platform,access,meeting_size,latency_ms,loss_pct,jitter_ms,\
         bandwidth_mbps,presence_pct,mic_on_pct,cam_on_pct,left_early,rating\n",
    );
    for s in &ds.sessions {
        let _ = writeln!(
            csv,
            "{},{},{},{},{:?},{},{:.2},{:.4},{:.2},{:.3},{:.1},{:.1},{:.1},{},{}",
            s.call_id,
            s.user_id,
            s.date,
            s.platform.label(),
            s.access,
            s.meeting_size,
            s.network_mean(NetworkMetric::LatencyMs),
            s.network_mean(NetworkMetric::LossPct),
            s.network_mean(NetworkMetric::JitterMs),
            s.network_mean(NetworkMetric::BandwidthMbps),
            s.presence_pct,
            s.mic_on_pct,
            s.cam_on_pct,
            s.left_early,
            s.rating.map(|r| r.to_string()).unwrap_or_default(),
        );
    }
    eprintln!("{} sessions", ds.len());
    write_out(&flags, "sessions.csv", &csv)
}

fn cmd_simulate_forum(flags: HashMap<String, String>) -> Result<(), String> {
    let seed = flag_u64(&flags, "seed", 0x50C1A1)?;
    eprintln!("simulating the two-year forum corpus (seed {seed})…");
    let forum = gen_forum(&ForumConfig {
        seed,
        ..ForumConfig::default()
    });
    let mut csv = String::from("id,date,author_id,country,upvotes,comments,has_screenshot,title\n");
    for p in &forum.posts {
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{},\"{}\"",
            p.id,
            p.date,
            p.author_id,
            p.country,
            p.upvotes,
            p.comments,
            p.screenshot.is_some(),
            p.title.replace('"', "'"),
        );
    }
    eprintln!("{} posts", forum.len());
    write_out(&flags, "posts.csv", &csv)
}

fn cmd_digest(flags: HashMap<String, String>) -> Result<(), String> {
    let calls = flag_usize(&flags, "calls", 3000)?;
    eprintln!("simulating {calls} calls + the forum corpus…");
    let ds = generate(&DatasetConfig {
        calls,
        ..DatasetConfig::default()
    });
    let forum = gen_forum(&ForumConfig::default());
    let digest = DigestBuilder::default()
        .build(&ds, &forum)
        .map_err(|e| format!("digest failed: {e}"))?;
    println!("{digest}");
    Ok(())
}

fn cmd_early(flags: HashMap<String, String>) -> Result<(), String> {
    use conference::call::{CallConfig, CallSimulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let calls = flag_usize(&flags, "calls", 600)? as u64;
    eprintln!("simulating {calls} detailed calls…");
    let sim = CallSimulator::default();
    let mut rng = StdRng::seed_from_u64(flag_u64(&flags, "seed", 0xEA71)?);
    let mut uid = 0;
    let mut sessions = Vec::new();
    for call_id in 0..calls {
        let config = CallConfig {
            call_id,
            date: analytics::time::Date::from_ymd(2022, 2, 15).expect("date"),
            start_hour: 10,
            participants: 5,
            scheduled_ticks: 360,
        };
        sessions.extend(sim.simulate_detailed(&mut rng, &config, &mut uid));
    }
    let monitor = EarlyQualityMonitor::default();
    let skills = monitor
        .skill_by_horizon(&sessions, &[12, 36, 72, 180, 360])
        .map_err(|e| format!("early analysis failed: {e}"))?;
    println!("early-indication skill ({} sessions):", sessions.len());
    println!("{:>12} {:>12} {:>12}", "horizon", "minutes", "corr(final)");
    for s in skills {
        println!(
            "{:>12} {:>12.1} {:>12.3}",
            s.horizon_ticks,
            s.horizon_ticks as f64 * 5.0 / 60.0,
            s.correlation
        );
    }
    Ok(())
}

/// Run `ticks` daemon ticks, print per-tick progress, then drain to a
/// final checkpoint — the serve loop shared by the single-service and
/// cluster paths.
fn drive_daemon<T: usaas::ServeTarget>(
    daemon: &usaas::Daemon<T>,
    ticks: u64,
) -> Result<(), String> {
    for report in daemon.run_ticks(ticks) {
        let mut line = format!(
            "tick {:>3}: fed {:>4}, quarantined {:>2}, committed {}",
            report.tick, report.fed, report.quarantined, report.committed,
        );
        if !report.checkpointed_units.is_empty() {
            let _ = write!(line, ", checkpointed {:?}", report.checkpointed_units);
        }
        if let Some(c) = report.compaction {
            let _ = write!(line, ", compacted {} records", c.dropped_records);
        }
        if let Some(c) = report.root_compaction {
            let _ = write!(line, ", root-compacted {} records", c.dropped_records);
        }
        eprintln!("{line}");
        for e in &report.errors {
            eprintln!("  tick error: {e}");
        }
    }

    let drain = daemon.shutdown();
    eprintln!(
        "drained: {} queued items fed ({} quarantined), final epoch {}, final seq {}",
        drain.fed, drain.quarantined, drain.final_epoch, drain.final_seq,
    );
    if let Some(c) = drain.root_compaction {
        eprintln!(
            "root log: final compaction dropped {} records",
            c.dropped_records
        );
    }
    if let Some(stats) = drain.journal {
        eprintln!(
            "journal: {} live records ({} bytes), oldest seq {}, {} compactions dropped {}",
            stats.records,
            stats.bytes,
            stats.oldest_live_seq,
            stats.compactions,
            stats.records_compacted,
        );
    }
    for e in &drain.errors {
        eprintln!("drain error: {e}");
    }
    if drain.errors.is_empty() {
        Ok(())
    } else {
        Err("drain finished with errors".to_string())
    }
}

fn cmd_serve(flags: HashMap<String, String>) -> Result<(), String> {
    use std::sync::Arc;
    use usaas::{
        Daemon, DaemonConfig, IngestConfig, ItemSource, PartitionedService, RawItem, UsaasService,
        WallClock,
    };

    let dir = flags
        .get("dir")
        .cloned()
        .unwrap_or_else(|| "usaas-data".to_string());
    let ticks = flag_u64(&flags, "ticks", 10)?;
    let tick_ms = flag_u64(&flags, "tick-ms", 100)?;
    let checkpoint_ms = flag_u64(&flags, "checkpoint-ms", 400)?;
    let window = flag_usize(&flags, "window", 256)?;
    let calls = flag_usize(&flags, "calls", 300)?;
    let seed = flag_u64(&flags, "seed", 0xDAE)?;
    let workers = flag_usize(&flags, "workers", 4)?;
    let partitions = flag_usize(&flags, "partitions", 1)?;
    if partitions == 0 {
        return Err("--partitions must be at least 1".to_string());
    }

    let path = std::path::Path::new(&dir);
    let fresh_data = || {
        let ds = generate(&DatasetConfig {
            calls,
            seed,
            ..DatasetConfig::default()
        });
        let forum = gen_forum(&ForumConfig {
            seed,
            ..ForumConfig::default()
        });
        (ds, forum)
    };
    // A demo telemetry feed: fresh sessions trickled in over the run.
    let feed: Vec<RawItem> = generate(&DatasetConfig {
        calls: calls / 2,
        seed: seed ^ 0xFEED,
        ..DatasetConfig::default()
    })
    .sessions
    .into_iter()
    .map(|s| RawItem::Session(Box::new(s)))
    .collect();

    let mut cfg = DaemonConfig::with_workers(workers);
    cfg.ingest = IngestConfig::with_workers(workers).with_clock(Arc::new(WallClock::new()));
    cfg.tick_ms = tick_ms;
    cfg.checkpoint_every_ms = checkpoint_ms;
    cfg.max_items_per_tick = window;

    // An existing cluster directory always reopens as a cluster (its
    // partition count comes from cluster.meta, not the flag).
    if path.join(usaas::CLUSTER_META).exists() || partitions > 1 {
        let svc = if path.join(usaas::CLUSTER_META).exists() {
            eprintln!("recovering cluster from {dir}…");
            let svc = PartitionedService::open_or_recover(path, workers)
                .map_err(|e| format!("recovering {dir}: {e}"))?;
            for warning in &svc.health().recovery_warnings {
                eprintln!("  recovery warning: {warning}");
            }
            svc
        } else {
            eprintln!(
                "bootstrapping a fresh {partitions}-partition cluster in {dir} \
                 ({calls} calls, seed {seed})…"
            );
            std::fs::create_dir_all(path).map_err(|e| format!("creating {dir}: {e}"))?;
            let (ds, forum) = fresh_data();
            PartitionedService::build_persistent(ds, forum, partitions, workers, path)
                .map_err(|e| format!("bootstrapping {dir}: {e}"))?
        };
        let svc = Arc::new(svc);
        eprintln!(
            "serving {} partition(s) at epoch {}",
            svc.partitions(),
            svc.epoch()
        );
        eprintln!("registering a demo feed of {} sessions", feed.len());
        let daemon = Daemon::new(Arc::clone(&svc), cfg);
        daemon.register_feed(Box::new(ItemSource::new("demo-telemetry", feed)));
        let result = drive_daemon(&daemon, ticks);
        let health = svc.health();
        eprintln!(
            "health: {} quarantined, {} breaker trips, open breakers {:?}",
            health.quarantined_total, health.breaker_trips_total, health.open_breakers,
        );
        return result;
    }

    let svc = if path.join(usaas::JOURNAL_FILE).exists() {
        eprintln!("recovering service from {dir}…");
        let svc = UsaasService::open_or_recover(path, workers)
            .map_err(|e| format!("recovering {dir}: {e}"))?;
        for warning in &svc.health().recovery_warnings {
            eprintln!("  recovery warning: {warning}");
        }
        svc
    } else {
        eprintln!("bootstrapping a fresh service in {dir} ({calls} calls, seed {seed})…");
        std::fs::create_dir_all(path).map_err(|e| format!("creating {dir}: {e}"))?;
        let (ds, forum) = fresh_data();
        UsaasService::build_persistent(ds, forum, workers, path)
            .map_err(|e| format!("bootstrapping {dir}: {e}"))?
    };
    let svc = Arc::new(svc);
    eprintln!("serving at epoch {}", svc.epoch());
    eprintln!("registering a demo feed of {} sessions", feed.len());

    let daemon = Daemon::new(Arc::clone(&svc), cfg);
    daemon.register_feed(Box::new(ItemSource::new("demo-telemetry", feed)));
    let result = drive_daemon(&daemon, ticks);
    let health = svc.health();
    eprintln!(
        "health: {} quarantined, {} breaker trips, open breakers {:?}",
        health.quarantined_total, health.breaker_trips_total, health.open_breakers,
    );
    result
}

const HELP: &str = "\
usaas — User Signals as-a-Service (reproduction CLI)

USAGE:
  usaas simulate-calls  [--calls N] [--seed S] [--out sessions.csv]
  usaas simulate-forum  [--seed S] [--out posts.csv]
  usaas digest          [--calls N]       print the USaaS insights digest
  usaas early           [--calls N]       early-quality indication skill
  usaas serve           [--dir D] [--ticks N] [--tick-ms MS] [--checkpoint-ms MS]
                        [--window N] [--calls N] [--seed S] [--workers N]
                        [--partitions P]
                        run the continuous-serving daemon against directory D:
                        bootstrap (or crash-recover) the store, trickle a demo
                        feed in tick windows, checkpoint + compact the journal
                        on a cadence, then drain to a final checkpoint.
                        --partitions P > 1 serves a durable partitioned
                        cluster: per-partition checkpoints on staggered
                        cadences plus root-log compaction (an existing
                        cluster directory reopens with its own count)
  usaas help
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{HELP}");
        return ExitCode::FAILURE;
    };
    let rest = args[1..].to_vec();
    let result = match cmd.as_str() {
        "simulate-calls" => parse_flags(&rest).and_then(cmd_simulate_calls),
        "simulate-forum" => parse_flags(&rest).and_then(cmd_simulate_forum),
        "digest" => parse_flags(&rest).and_then(cmd_digest),
        "early" => parse_flags(&rest).and_then(cmd_early),
        "serve" => parse_flags(&rest).and_then(cmd_serve),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{HELP}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
