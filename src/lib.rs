//! `user-signals` — umbrella crate re-exporting the full workspace.
//!
//! This is a reproduction of *"Don't Forget the User: It's Time to Rethink
//! Network Measurements"* (HotNets '23). See `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the per-figure reproduction record.
//!
//! The interesting entry points:
//! * [`usaas`] — the paper's contribution: User Signals as-a-Service.
//! * [`conference`] — the MS-Teams-like conferencing simulator (§3 substrate).
//! * [`social`] / [`starlink`] — the Reddit + Starlink substrates (§4).

pub use analytics;
pub use conference;
pub use netsim;
pub use ocr;
pub use sentiment;
pub use social;
pub use starlink;
pub use usaas;
