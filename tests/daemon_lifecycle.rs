//! Daemon lifecycle contract suite, all on a virtual clock.
//!
//! Four promises are pinned here:
//!
//! 1. **Trusted soak** — a daemon run (tick-windowed feed pulls + submit
//!    queue + periodic checkpoints + journal compaction + drain) answers
//!    every query **bit-identically** to the equivalent manual
//!    `append_batch` schedule, at workers 1/4/8, and a restart of the
//!    drained directory reproduces the same state.
//! 2. **Faulty soak** — the same bit-identity under seeded `FaultPlan`
//!    injectors (drops, transient flakiness, a burst-fail window, a
//!    poison pill, corruption), swept over fault seeds × workers 1/4/8
//!    against a manual `TakeSource` mirror of the daemon's tick schedule.
//!    Seeds extend via the `INGEST_FAULT_SEEDS` env knob CI sweeps.
//! 3. **Bounded journal** — across ≥ 3 compaction passes the journal's
//!    live record count stays pinned to `last_seq - oldest_live_seq + 1`,
//!    each pass shrinks the file, and the drained directory still
//!    recovers bit-identically with zero warnings.
//! 4. **Mid-compaction kill points** — a crash before the compaction
//!    rename (stray `journal.tmp`), after it, or at any surviving record
//!    boundary recovers through the existing `open_or_recover` with no
//!    warnings and worker-invariant answers.

use analytics::time::Date;
use conference::dataset::{generate, DatasetConfig};
use conference::records::{CallDataset, EngagementMetric, NetworkMetric, SessionRecord};
use netsim::access::AccessType;
use social::generator::{generate as gen_forum, ForumConfig};
use social::post::{Forum, Post};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use usaas::{
    journal_record_offsets, Clock, Daemon, DaemonConfig, FaultInjector, FaultPlan, IngestConfig,
    ItemSource, Query, RawItem, Source, TakeSource, UsaasService, VirtualClock, JOURNAL_FILE,
};

/// Fresh scratch directory under the system temp dir, emptied first.
fn tmp_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("usaas-daemon-{}-{test}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Copy every regular file of `src` into `dst` (the persist layout is
/// flat, so one level is enough).
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
    }
}

fn queries() -> Vec<Query> {
    vec![
        Query::EngagementCurve {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::Presence,
            bins: 5,
        },
        Query::MosCorrelation,
        Query::OutageTimeline,
        Query::SpeedTrend,
        Query::CrossNetwork {
            access: AccessType::SatelliteLeo,
        },
    ]
}

/// The bit-identity fingerprint: epoch, store counts, durable health
/// (minus recovery warnings and journal stats, which legitimately differ
/// between a persisted daemon and an in-memory reference), dead-letters,
/// and the debug-formatted answer to every query.
fn fingerprint(svc: &UsaasService) -> Vec<String> {
    let health = svc.health();
    let mut out = vec![
        format!("epoch={}", svc.epoch()),
        format!("signals={:?}", svc.signal_counts()),
        format!(
            "health q={} u={} t={} open={:?} dropped={}",
            health.quarantined_total,
            health.unfed_total,
            health.breaker_trips_total,
            health.open_breakers,
            health.dead_letters_dropped,
        ),
        format!("dead_letters={:?}", svc.dead_letters()),
    ];
    for q in queries() {
        out.push(format!("{q:?} => {:?}", svc.query(&q)));
    }
    out
}

/// Seeds for the faulty soak: `INGEST_FAULT_SEEDS=1,2,3` overrides the
/// default single seed (CI sweeps three).
fn fault_seeds() -> Vec<u64> {
    std::env::var("INGEST_FAULT_SEEDS")
        .ok()
        .map(|raw| {
            raw.split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|seeds| !seeds.is_empty())
        .unwrap_or_else(|| vec![7])
}

fn split_kinds(items: &[RawItem]) -> (Vec<SessionRecord>, Vec<Post>) {
    let mut sessions = Vec::new();
    let mut posts = Vec::new();
    for item in items {
        match item {
            RawItem::Session(s) => sessions.push((**s).clone()),
            RawItem::Post(p) => posts.push((**p).clone()),
            RawItem::Poison(_) => {}
        }
    }
    (sessions, posts)
}

fn daemon_config(workers: usize, clock: Arc<VirtualClock>, window: usize) -> DaemonConfig {
    let mut cfg = DaemonConfig::with_workers(workers);
    cfg.ingest = IngestConfig::with_workers(workers).with_clock(clock);
    cfg.tick_ms = 1_000;
    cfg.max_items_per_tick = window;
    cfg.checkpoint_every_ms = 2_500;
    cfg.compact_journal = true;
    cfg
}

// ---------------------------------------------------------------------
// 1. Trusted soak: daemon ticks == manual append_batch schedule.
// ---------------------------------------------------------------------

struct TrustedFixture {
    dataset: CallDataset,
    forum: Forum,
    /// The long-lived feed's interleaved item stream.
    feed_items: Vec<RawItem>,
    /// Ad-hoc batches submitted before ticks 1 and 3 (0-based).
    submits: Vec<(usize, Vec<RawItem>)>,
}

impl TrustedFixture {
    fn new() -> TrustedFixture {
        let dataset = generate(&DatasetConfig::small(80, 33));
        let forum = gen_forum(&ForumConfig {
            authors: 150,
            end: Date::from_ymd(2021, 4, 30).unwrap(),
            ..ForumConfig::default()
        });
        let feed_sessions = generate(&DatasetConfig::small(70, 77)).sessions;
        let feed_posts = gen_forum(&ForumConfig {
            seed: 9,
            authors: 60,
            end: Date::from_ymd(2021, 2, 28).unwrap(),
            ..ForumConfig::default()
        })
        .posts;
        // Interleave sessions and posts so every tick window mixes kinds.
        let mut feed_items = Vec::new();
        let mut posts_iter = feed_posts.iter().take(40).cloned();
        for (i, s) in feed_sessions.into_iter().take(60).enumerate() {
            feed_items.push(RawItem::Session(Box::new(s)));
            if i % 3 == 0 {
                if let Some(p) = posts_iter.next() {
                    feed_items.push(RawItem::Post(Box::new(p)));
                }
            }
        }
        let submit_a: Vec<RawItem> = generate(&DatasetConfig::small(20, 5))
            .sessions
            .into_iter()
            .take(12)
            .map(|s| RawItem::Session(Box::new(s)))
            .collect();
        let submit_b: Vec<RawItem> = feed_posts
            .iter()
            .skip(40)
            .take(8)
            .cloned()
            .map(|p| RawItem::Post(Box::new(p)))
            .collect();
        TrustedFixture {
            dataset,
            forum,
            feed_items,
            submits: vec![(1, submit_a), (3, submit_b)],
        }
    }

    /// The manual schedule the daemon must match: for each tick, one
    /// `append_batch` carrying that tick's submitted items followed by
    /// that tick's feed window (submit sources are fed before the feed
    /// inside one daemon tick, so relative per-kind order is submit-first).
    fn reference(&self, window: usize, ticks: usize, workers: usize) -> UsaasService {
        let svc = UsaasService::build(self.dataset.clone(), self.forum.clone(), workers);
        let mut offset = 0usize;
        for tick in 0..ticks {
            let submitted = self
                .submits
                .iter()
                .find(|(at, _)| *at == tick)
                .map(|(_, items)| items.as_slice())
                .unwrap_or(&[]);
            let take = window.min(self.feed_items.len() - offset);
            let window_items = &self.feed_items[offset..offset + take];
            offset += take;
            let (mut sessions, mut posts) = split_kinds(submitted);
            let (ws, wp) = split_kinds(window_items);
            sessions.extend(ws);
            posts.extend(wp);
            svc.append_batch(sessions, posts);
        }
        svc
    }
}

#[test]
fn trusted_soak_matches_manual_schedule_bit_identically() {
    let fx = TrustedFixture::new();
    let window = 16usize;
    // Ticks with feed activity, one trailing tick that retires the feed
    // (zero activity — the reference mirrors it with an empty append), and
    // a few idle ticks so the 2.5s checkpoint cadence fires twice on the
    // 1s virtual tick clock.
    let active_ticks = fx.feed_items.len().div_ceil(window);
    let ticks = active_ticks + 4;

    let mut prints: Vec<Vec<String>> = Vec::new();
    for workers in [1usize, 4, 8] {
        let dir = tmp_dir(&format!("trusted-w{workers}"));
        let clock = Arc::new(VirtualClock::new());
        let svc = Arc::new(
            UsaasService::build_persistent(fx.dataset.clone(), fx.forum.clone(), workers, &dir)
                .unwrap(),
        );
        let daemon = Daemon::new(
            Arc::clone(&svc),
            daemon_config(workers, clock.clone(), window),
        );
        daemon.register_feed(Box::new(ItemSource::new(
            "telemetry-feed",
            fx.feed_items.clone(),
        )));
        let mut checkpoints = 0usize;
        let mut compactions = 0usize;
        for tick in 0..ticks {
            if let Some((_, items)) = fx.submits.iter().find(|(at, _)| *at == tick) {
                assert!(matches!(
                    daemon.submit(items.clone()),
                    usaas::SubmitOutcome::Queued { .. }
                ));
            }
            let report = daemon.tick();
            assert!(report.errors.is_empty(), "{:?}", report.errors);
            checkpoints += usize::from(report.checkpointed.is_some());
            compactions += usize::from(report.compaction.is_some());
            clock.sleep_ms(1_000);
        }
        assert!(checkpoints >= 2, "periodic checkpointing never fired");
        assert!(compactions >= 1, "compaction never ran after a checkpoint");
        assert!(
            daemon.health().feeds[0].done,
            "the exhausted feed must be retired"
        );

        let drain = daemon.shutdown();
        assert!(drain.errors.is_empty(), "{:?}", drain.errors);
        assert!(
            drain.checkpoint.is_some(),
            "drain writes a final checkpoint"
        );

        let reference = fx.reference(window, ticks, workers);
        let live = fingerprint(&svc);
        assert_eq!(
            live,
            fingerprint(&reference),
            "daemon workers={workers} diverged from the manual schedule"
        );

        // Restart continuity: the drained directory reproduces the state.
        drop(daemon);
        drop(svc);
        let reopened = UsaasService::open_or_recover(&dir, workers).unwrap();
        assert!(
            reopened.health().recovery_warnings.is_empty(),
            "drained dir must reopen clean: {:?}",
            reopened.health().recovery_warnings
        );
        assert_eq!(fingerprint(&reopened), live);
        prints.push(live);
        let _ = fs::remove_dir_all(&dir);
    }
    assert_eq!(prints[0], prints[1], "workers 1 vs 4 diverged");
    assert_eq!(prints[0], prints[2], "workers 1 vs 8 diverged");
}

// ---------------------------------------------------------------------
// 2. Faulty soak: seeded injectors, daemon vs a manual TakeSource mirror.
// ---------------------------------------------------------------------

fn faulty_session_items(seed: u64) -> Vec<RawItem> {
    generate(&DatasetConfig::small(110, seed))
        .sessions
        .into_iter()
        .take(100)
        .map(|s| RawItem::Session(Box::new(s)))
        .collect()
}

fn faulty_post_items() -> Vec<RawItem> {
    gen_forum(&ForumConfig {
        authors: 250,
        ..ForumConfig::default()
    })
    .posts
    .into_iter()
    .take(120)
    .map(|p| RawItem::Post(Box::new(p)))
    .collect()
}

/// The two faulty feeds, freshly constructed on the given clock (the
/// fault decisions are pure in `hash(seed, item index)`, so daemon and
/// mirror see identical streams even though their clocks advance
/// differently).
fn faulty_feeds(seed: u64, clock: Arc<dyn Clock>) -> Vec<Box<dyn Source>> {
    let session_plan = FaultPlan::seeded(seed)
        .with_drops(0.03)
        .with_transient(0.05, 1)
        .with_burst(40..46)
        .with_poison(10);
    let post_plan = FaultPlan::seeded(seed ^ 0x9E37_79B9)
        .with_drops(0.02)
        .with_corruption(0.03);
    vec![
        Box::new(FaultInjector::new(
            ItemSource::new("conference-telemetry", faulty_session_items(seed)),
            session_plan,
            Arc::clone(&clock),
        )),
        Box::new(FaultInjector::new(
            ItemSource::new("forum-crawl", faulty_post_items()),
            post_plan,
            clock,
        )),
    ]
}

/// Manual mirror of the daemon's tick loop: window every live feed with
/// `TakeSource`, run one ingest per tick, retire feeds by the daemon's
/// rule (disconnected, or a tick with zero activity).
fn faulty_reference(fx_base: &(CallDataset, Forum), seed: u64, workers: usize) -> UsaasService {
    let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
    let svc = UsaasService::build(fx_base.0.clone(), fx_base.1.clone(), workers);
    let cfg = IngestConfig::with_workers(workers).with_clock(clock.clone());
    let mut feeds = faulty_feeds(seed, clock.clone());
    let mut done = vec![false; feeds.len()];
    for _ in 0..MAX_FAULTY_TICKS {
        if done.iter().all(|d| *d) {
            break;
        }
        let mut polled = Vec::new();
        let mut sources: Vec<Box<dyn Source + '_>> = Vec::new();
        for (i, feed) in feeds.iter_mut().enumerate() {
            if done[i] {
                continue;
            }
            polled.push(i);
            sources.push(Box::new(TakeSource::new(feed.as_mut(), FAULTY_WINDOW)));
        }
        let report = svc.ingest_append(sources, &cfg);
        for (k, &i) in polled.iter().enumerate() {
            let health = &report.sources[k];
            let active =
                health.fed + health.quarantined + health.retries + health.dropped + health.skipped
                    > 0;
            if health.disconnected || !active {
                done[i] = true;
            }
        }
        clock.sleep_ms(1_000);
    }
    svc
}

const FAULTY_WINDOW: usize = 25;
const MAX_FAULTY_TICKS: usize = 40;

#[test]
fn faulty_soak_is_worker_invariant_and_matches_the_mirror() {
    let base = (
        generate(&DatasetConfig::small(60, 21)),
        Forum { posts: Vec::new() },
    );
    for seed in fault_seeds() {
        let mut prints: Vec<Vec<String>> = Vec::new();
        for workers in [1usize, 4, 8] {
            let dir = tmp_dir(&format!("faulty-s{seed}-w{workers}"));
            let clock = Arc::new(VirtualClock::new());
            let svc = Arc::new(
                UsaasService::build_persistent(base.0.clone(), base.1.clone(), workers, &dir)
                    .unwrap(),
            );
            let daemon = Daemon::new(
                Arc::clone(&svc),
                daemon_config(workers, clock.clone(), FAULTY_WINDOW),
            );
            for feed in faulty_feeds(seed, clock.clone()) {
                daemon.register_feed(feed);
            }
            for _ in 0..MAX_FAULTY_TICKS {
                if daemon.health().feeds.iter().all(|f| f.done) {
                    break;
                }
                let report = daemon.tick();
                assert!(report.errors.is_empty(), "{:?}", report.errors);
                clock.sleep_ms(1_000);
            }
            assert!(
                daemon.health().feeds.iter().all(|f| f.done),
                "seed {seed}: feeds never drained"
            );
            let health = svc.health();
            assert!(
                health.quarantined_total > 0,
                "seed {seed}: the fault plan produced no dead letters — vacuous"
            );

            let reference = faulty_reference(&base, seed, workers);
            let live = fingerprint(&svc);
            assert_eq!(
                live,
                fingerprint(&reference),
                "seed {seed} workers={workers}: daemon diverged from the mirror"
            );
            prints.push(live);
            let _ = fs::remove_dir_all(&dir);
        }
        assert_eq!(prints[0], prints[1], "seed {seed}: workers 1 vs 4");
        assert_eq!(prints[0], prints[2], "seed {seed}: workers 1 vs 8");
    }
}

// ---------------------------------------------------------------------
// 3. Bounded journal across ≥ 3 compaction cycles.
// ---------------------------------------------------------------------

/// A tiny base plus a long trickle feed: appends outgrow the full-snapshot
/// base repeatedly, so the auto-chooser keeps writing fulls, retention
/// keeps aging out old ones, and compaction keeps finding records to drop.
fn bounded_fixture() -> (CallDataset, Vec<RawItem>) {
    let mut base = generate(&DatasetConfig::small(24, 3));
    base.sessions.truncate(20);
    let feed: Vec<RawItem> = generate(&DatasetConfig::small(420, 13))
        .sessions
        .into_iter()
        .take(400)
        .map(|s| RawItem::Session(Box::new(s)))
        .collect();
    (base, feed)
}

#[test]
fn journal_stays_bounded_across_compaction_cycles() {
    let (base, feed) = bounded_fixture();
    let total_items = feed.len();
    let window = 8usize;
    let ticks = total_items / window + 2;
    let dir = tmp_dir("bounded");
    let clock = Arc::new(VirtualClock::new());
    let svc = Arc::new(
        UsaasService::build_persistent(base, Forum { posts: Vec::new() }, 4, &dir).unwrap(),
    );
    let mut cfg = daemon_config(4, clock.clone(), window);
    cfg.checkpoint_every_ms = 1_500; // checkpoint (and compact) every other tick
    let daemon = Daemon::new(Arc::clone(&svc), cfg);
    daemon.register_feed(Box::new(ItemSource::new("trickle", feed)));

    let mut compaction_passes = Vec::new();
    for _ in 0..ticks {
        let report = daemon.tick();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        if let Some(c) = report.compaction {
            if c.dropped_records > 0 {
                assert!(
                    c.bytes_after < c.bytes_before,
                    "a dropping pass must shrink the file: {c:?}"
                );
                compaction_passes.push(c);
            }
        }
        clock.sleep_ms(1_000);
    }
    assert!(
        compaction_passes.len() >= 3,
        "need ≥ 3 compaction cycles, got {}",
        compaction_passes.len()
    );
    for pair in compaction_passes.windows(2) {
        assert!(
            pair[1].safe_seq > pair[0].safe_seq,
            "the safety bound must advance: {pair:?}"
        );
    }

    let stats = svc.health().journal.expect("persistent service has stats");
    assert_eq!(stats.compactions, compaction_passes.len() as u64);
    assert!(stats.records_compacted > 0);
    assert!(stats.oldest_live_seq > 1, "old records were dropped");
    assert_eq!(
        stats.records,
        stats.last_seq - stats.oldest_live_seq + 1,
        "live records pinned to the seq range"
    );
    assert!(
        stats.last_seq >= 40,
        "the workload appended a long history (got {})",
        stats.last_seq
    );
    // Bounded: the tail the journal keeps is pinned behind the newest
    // retained full snapshot, so a majority of the history is gone. (The
    // auto-chooser's full-snapshot cadence is geometric in dataset size,
    // so the tail is a fraction of the history, not a fixed constant.)
    assert!(
        stats.records_compacted >= 15,
        "compaction dropped a real share of the history: {stats:?}"
    );
    assert!(
        stats.oldest_live_seq > stats.last_seq / 3,
        "the live tail starts well past the oldest history: {stats:?}"
    );
    assert!(
        stats.records <= 32,
        "the journal holds a bounded tail, not the history: {} records",
        stats.records
    );

    // Boundedness did not cost recoverability: the drained directory
    // reopens clean and bit-identical, at two worker counts.
    let drain = daemon.shutdown();
    assert!(drain.errors.is_empty(), "{:?}", drain.errors);
    let live = fingerprint(&svc);
    drop(daemon);
    drop(svc);
    for workers in [1usize, 4] {
        let reopened = UsaasService::open_or_recover(&dir, workers).unwrap();
        assert!(
            reopened.health().recovery_warnings.is_empty(),
            "{:?}",
            reopened.health().recovery_warnings
        );
        assert_eq!(fingerprint(&reopened), live, "workers={workers}");
    }
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// 4. Mid-compaction kill points.
// ---------------------------------------------------------------------

#[test]
fn mid_compaction_kill_points_recover_clean() {
    let (base, feed) = bounded_fixture();
    let dir = tmp_dir("killpoints");
    let clock = Arc::new(VirtualClock::new());
    let svc = Arc::new(
        UsaasService::build_persistent(base, Forum { posts: Vec::new() }, 4, &dir).unwrap(),
    );
    let mut cfg = daemon_config(4, clock.clone(), 8);
    cfg.checkpoint_every_ms = 1_500;
    let daemon = Daemon::new(Arc::clone(&svc), cfg);
    daemon.register_feed(Box::new(ItemSource::new("trickle", feed)));
    let mut compacted = 0;
    for _ in 0..60 {
        let report = daemon.tick();
        if report.compaction.map(|c| c.dropped_records > 0) == Some(true) {
            compacted += 1;
        }
        clock.sleep_ms(1_000);
        if compacted >= 2 {
            break;
        }
    }
    assert!(compacted >= 2, "workload never compacted twice");
    let stats = svc.health().journal.unwrap();
    assert!(stats.oldest_live_seq > 1);
    let live = fingerprint(&svc);
    drop(daemon);
    drop(svc);

    // Kill point A: crash *before* the compaction rename — the old journal
    // is intact and a stray half-written journal.tmp sits next to it.
    // Recovery must ignore the tmp entirely.
    {
        let crash = tmp_dir("killpoints-prerename");
        copy_dir(&dir, &crash);
        let journal_bytes = fs::read(crash.join(JOURNAL_FILE)).unwrap();
        let mut tmp = journal_bytes[..journal_bytes.len() / 2].to_vec();
        tmp.extend_from_slice(b"\xDE\xAD\xBE\xEF torn compaction scratch");
        fs::write(crash.join("journal.tmp"), tmp).unwrap();
        let recovered = UsaasService::open_or_recover(&crash, 4).unwrap();
        assert!(
            recovered.health().recovery_warnings.is_empty(),
            "a stray journal.tmp must not surface: {:?}",
            recovered.health().recovery_warnings
        );
        assert_eq!(fingerprint(&recovered), live, "pre-rename crash state");
        let _ = fs::remove_dir_all(&crash);
    }

    // Kill point B: crash *after* the rename — the live directory IS that
    // state (its journal is the compacted file). Then cut the compacted
    // journal at every surviving record boundary: each prefix must
    // recover with zero warnings (in particular no "journal gap" — the
    // compaction bound guarantees every loadable snapshot covers the
    // dropped records) and answer worker-invariantly.
    let offsets = journal_record_offsets(&dir.join(JOURNAL_FILE)).unwrap();
    assert!(offsets.len() > 2, "compacted journal still has a tail");
    let oldest = stats.oldest_live_seq;
    for (k, &cut_at) in offsets.iter().enumerate() {
        let crash = tmp_dir(&format!("killpoints-cut{k}"));
        copy_dir(&dir, &crash);
        fs::OpenOptions::new()
            .write(true)
            .open(crash.join(JOURNAL_FILE))
            .unwrap()
            .set_len(cut_at)
            .unwrap();
        // A crash at this boundary predates snapshots covering later seqs.
        let cut_seq = oldest + k as u64 - u64::from(k > 0);
        drop_snapshots_after(&crash, if k == 0 { oldest - 1 } else { cut_seq });

        let a = UsaasService::open_or_recover(&crash, 1).unwrap();
        let wa = a.health().recovery_warnings;
        assert!(wa.is_empty(), "cut {k}: unexpected warnings {wa:?}");
        let b = UsaasService::open_or_recover(&crash, 4).unwrap();
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "cut {k}: recovery must be worker-invariant"
        );
        let _ = fs::remove_dir_all(&crash);
    }

    // The uncut directory still recovers to the live state.
    let recovered = UsaasService::open_or_recover(&dir, 4).unwrap();
    assert_eq!(fingerprint(&recovered), live);
    let _ = fs::remove_dir_all(&dir);
}

/// The journal sequence a persisted file covers: `snapshot-<seq>.snap`
/// or `diff-<base>-<seq>.snap`.
fn persisted_seq(name: &str) -> Option<u64> {
    let mid = name.strip_suffix(".snap")?;
    if let Some(seq) = mid.strip_prefix("snapshot-") {
        return seq.parse().ok();
    }
    let (_base, seq) = mid.strip_prefix("diff-")?.split_once('-')?;
    seq.parse().ok()
}

/// Remove snapshots (full or differential) that would not have existed at
/// a crash after journal seq `k`.
fn drop_snapshots_after(dir: &Path, k: u64) {
    for entry in fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = persisted_seq(name) {
            if seq > k {
                fs::remove_file(entry.path()).unwrap();
            }
        }
    }
}
