//! Daemon lifecycle contract suite, all on a virtual clock.
//!
//! Four promises are pinned here:
//!
//! 1. **Trusted soak** — a daemon run (tick-windowed feed pulls + submit
//!    queue + periodic checkpoints + journal compaction + drain) answers
//!    every query **bit-identically** to the equivalent manual
//!    `append_batch` schedule, at workers 1/4/8, and a restart of the
//!    drained directory reproduces the same state.
//! 2. **Faulty soak** — the same bit-identity under seeded `FaultPlan`
//!    injectors (drops, transient flakiness, a burst-fail window, a
//!    poison pill, corruption), swept over fault seeds × workers 1/4/8
//!    against a manual `TakeSource` mirror of the daemon's tick schedule.
//!    Seeds extend via the `INGEST_FAULT_SEEDS` env knob CI sweeps.
//! 3. **Bounded journal** — across ≥ 3 compaction passes the journal's
//!    live record count stays pinned to `last_seq - oldest_live_seq + 1`,
//!    each pass shrinks the file, and the drained directory still
//!    recovers bit-identically with zero warnings.
//! 4. **Mid-compaction kill points** — a crash before the compaction
//!    rename (stray `journal.tmp`), after it, or at any surviving record
//!    boundary recovers through the existing `open_or_recover` with no
//!    warnings and worker-invariant answers.
//!
//! The cluster-daemon section extends the same four promises to a
//! durable `PartitionedService` behind the generic daemon: trusted and
//! faulty soaks bit-identical to a manually scheduled cluster at
//! partitions 1/2/4 × workers 1/4/8, the **root cluster log** bounded
//! across ≥ 3 root-compaction passes under seeded faults, and
//! mid-root-compaction kill points (stray tmp files, snapshot written
//! but log uncompacted, compaction complete, newest cluster snapshot
//! corrupt at rest) recovering bit-identical to the uncompacted
//! reference. A final sweep pins the four daemon timing/admission
//! bugfixes: checkpoint-failure backoff, the exact Block deadline,
//! bounded stop latency, and `TakeSource::dropped` under counter resets.

use analytics::time::Date;
use conference::dataset::{generate, DatasetConfig};
use conference::records::{CallDataset, EngagementMetric, NetworkMetric, SessionRecord};
use netsim::access::AccessType;
use social::generator::{generate as gen_forum, ForumConfig};
use social::post::{Forum, Post};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use usaas::{
    journal_record_offsets, Clock, Daemon, DaemonConfig, FaultInjector, FaultPlan, IngestConfig,
    ItemSource, PartitionedService, Query, RawItem, Source, TakeSource, UsaasService, VirtualClock,
    JOURNAL_FILE,
};

/// Fresh scratch directory under the system temp dir, emptied first.
fn tmp_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("usaas-daemon-{}-{test}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Copy `src` into `dst` recursively (a cluster directory nests one
/// `part-N/` level; single-service layouts stay flat).
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).unwrap();
        }
    }
}

fn queries() -> Vec<Query> {
    vec![
        Query::EngagementCurve {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::Presence,
            bins: 5,
        },
        Query::MosCorrelation,
        Query::OutageTimeline,
        Query::SpeedTrend,
        Query::CrossNetwork {
            access: AccessType::SatelliteLeo,
        },
    ]
}

/// The bit-identity fingerprint: epoch, store counts, durable health
/// (minus recovery warnings and journal stats, which legitimately differ
/// between a persisted daemon and an in-memory reference), dead-letters,
/// and the debug-formatted answer to every query.
fn fingerprint(svc: &UsaasService) -> Vec<String> {
    let health = svc.health();
    let mut out = vec![
        format!("epoch={}", svc.epoch()),
        format!("signals={:?}", svc.signal_counts()),
        format!(
            "health q={} u={} t={} open={:?} dropped={}",
            health.quarantined_total,
            health.unfed_total,
            health.breaker_trips_total,
            health.open_breakers,
            health.dead_letters_dropped,
        ),
        format!("dead_letters={:?}", svc.dead_letters()),
    ];
    for q in queries() {
        out.push(format!("{q:?} => {:?}", svc.query(&q)));
    }
    out
}

/// Seeds for the faulty soak: `INGEST_FAULT_SEEDS=1,2,3` overrides the
/// default single seed (CI sweeps three).
fn fault_seeds() -> Vec<u64> {
    std::env::var("INGEST_FAULT_SEEDS")
        .ok()
        .map(|raw| {
            raw.split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|seeds| !seeds.is_empty())
        .unwrap_or_else(|| vec![7])
}

fn split_kinds(items: &[RawItem]) -> (Vec<SessionRecord>, Vec<Post>) {
    let mut sessions = Vec::new();
    let mut posts = Vec::new();
    for item in items {
        match item {
            RawItem::Session(s) => sessions.push((**s).clone()),
            RawItem::Post(p) => posts.push((**p).clone()),
            RawItem::Poison(_) => {}
        }
    }
    (sessions, posts)
}

fn daemon_config(workers: usize, clock: Arc<VirtualClock>, window: usize) -> DaemonConfig {
    let mut cfg = DaemonConfig::with_workers(workers);
    cfg.ingest = IngestConfig::with_workers(workers).with_clock(clock);
    cfg.tick_ms = 1_000;
    cfg.max_items_per_tick = window;
    cfg.checkpoint_every_ms = 2_500;
    cfg.compact_journal = true;
    cfg
}

// ---------------------------------------------------------------------
// 1. Trusted soak: daemon ticks == manual append_batch schedule.
// ---------------------------------------------------------------------

struct TrustedFixture {
    dataset: CallDataset,
    forum: Forum,
    /// The long-lived feed's interleaved item stream.
    feed_items: Vec<RawItem>,
    /// Ad-hoc batches submitted before ticks 1 and 3 (0-based).
    submits: Vec<(usize, Vec<RawItem>)>,
}

impl TrustedFixture {
    fn new() -> TrustedFixture {
        let dataset = generate(&DatasetConfig::small(80, 33));
        let forum = gen_forum(&ForumConfig {
            authors: 150,
            end: Date::from_ymd(2021, 4, 30).unwrap(),
            ..ForumConfig::default()
        });
        let feed_sessions = generate(&DatasetConfig::small(70, 77)).sessions;
        let feed_posts = gen_forum(&ForumConfig {
            seed: 9,
            authors: 60,
            end: Date::from_ymd(2021, 2, 28).unwrap(),
            ..ForumConfig::default()
        })
        .posts;
        // Interleave sessions and posts so every tick window mixes kinds.
        let mut feed_items = Vec::new();
        let mut posts_iter = feed_posts.iter().take(40).cloned();
        for (i, s) in feed_sessions.into_iter().take(60).enumerate() {
            feed_items.push(RawItem::Session(Box::new(s)));
            if i % 3 == 0 {
                if let Some(p) = posts_iter.next() {
                    feed_items.push(RawItem::Post(Box::new(p)));
                }
            }
        }
        let submit_a: Vec<RawItem> = generate(&DatasetConfig::small(20, 5))
            .sessions
            .into_iter()
            .take(12)
            .map(|s| RawItem::Session(Box::new(s)))
            .collect();
        let submit_b: Vec<RawItem> = feed_posts
            .iter()
            .skip(40)
            .take(8)
            .cloned()
            .map(|p| RawItem::Post(Box::new(p)))
            .collect();
        TrustedFixture {
            dataset,
            forum,
            feed_items,
            submits: vec![(1, submit_a), (3, submit_b)],
        }
    }

    /// The manual schedule the daemon must match: for each tick, one
    /// `append_batch` carrying that tick's submitted items followed by
    /// that tick's feed window (submit sources are fed before the feed
    /// inside one daemon tick, so relative per-kind order is submit-first).
    fn reference(&self, window: usize, ticks: usize, workers: usize) -> UsaasService {
        let svc = UsaasService::build(self.dataset.clone(), self.forum.clone(), workers);
        let mut offset = 0usize;
        for tick in 0..ticks {
            let submitted = self
                .submits
                .iter()
                .find(|(at, _)| *at == tick)
                .map(|(_, items)| items.as_slice())
                .unwrap_or(&[]);
            let take = window.min(self.feed_items.len() - offset);
            let window_items = &self.feed_items[offset..offset + take];
            offset += take;
            let (mut sessions, mut posts) = split_kinds(submitted);
            let (ws, wp) = split_kinds(window_items);
            sessions.extend(ws);
            posts.extend(wp);
            svc.append_batch(sessions, posts);
        }
        svc
    }
}

#[test]
fn trusted_soak_matches_manual_schedule_bit_identically() {
    let fx = TrustedFixture::new();
    let window = 16usize;
    // Ticks with feed activity, one trailing tick that retires the feed
    // (zero activity — the reference mirrors it with an empty append), and
    // a few idle ticks so the 2.5s checkpoint cadence fires twice on the
    // 1s virtual tick clock.
    let active_ticks = fx.feed_items.len().div_ceil(window);
    let ticks = active_ticks + 4;

    let mut prints: Vec<Vec<String>> = Vec::new();
    for workers in [1usize, 4, 8] {
        let dir = tmp_dir(&format!("trusted-w{workers}"));
        let clock = Arc::new(VirtualClock::new());
        let svc = Arc::new(
            UsaasService::build_persistent(fx.dataset.clone(), fx.forum.clone(), workers, &dir)
                .unwrap(),
        );
        let daemon = Daemon::new(
            Arc::clone(&svc),
            daemon_config(workers, clock.clone(), window),
        );
        daemon.register_feed(Box::new(ItemSource::new(
            "telemetry-feed",
            fx.feed_items.clone(),
        )));
        let mut checkpoints = 0usize;
        let mut compactions = 0usize;
        for tick in 0..ticks {
            if let Some((_, items)) = fx.submits.iter().find(|(at, _)| *at == tick) {
                assert!(matches!(
                    daemon.submit(items.clone()),
                    usaas::SubmitOutcome::Queued { .. }
                ));
            }
            let report = daemon.tick();
            assert!(report.errors.is_empty(), "{:?}", report.errors);
            checkpoints += usize::from(report.checkpointed.is_some());
            compactions += usize::from(report.compaction.is_some());
            clock.sleep_ms(1_000);
        }
        assert!(checkpoints >= 2, "periodic checkpointing never fired");
        assert!(compactions >= 1, "compaction never ran after a checkpoint");
        assert!(
            daemon.health().feeds[0].done,
            "the exhausted feed must be retired"
        );

        let drain = daemon.shutdown();
        assert!(drain.errors.is_empty(), "{:?}", drain.errors);
        assert!(
            drain.checkpoint.is_some(),
            "drain writes a final checkpoint"
        );

        let reference = fx.reference(window, ticks, workers);
        let live = fingerprint(&svc);
        assert_eq!(
            live,
            fingerprint(&reference),
            "daemon workers={workers} diverged from the manual schedule"
        );

        // Restart continuity: the drained directory reproduces the state.
        drop(daemon);
        drop(svc);
        let reopened = UsaasService::open_or_recover(&dir, workers).unwrap();
        assert!(
            reopened.health().recovery_warnings.is_empty(),
            "drained dir must reopen clean: {:?}",
            reopened.health().recovery_warnings
        );
        assert_eq!(fingerprint(&reopened), live);
        prints.push(live);
        let _ = fs::remove_dir_all(&dir);
    }
    assert_eq!(prints[0], prints[1], "workers 1 vs 4 diverged");
    assert_eq!(prints[0], prints[2], "workers 1 vs 8 diverged");
}

// ---------------------------------------------------------------------
// 2. Faulty soak: seeded injectors, daemon vs a manual TakeSource mirror.
// ---------------------------------------------------------------------

fn faulty_session_items(seed: u64) -> Vec<RawItem> {
    generate(&DatasetConfig::small(110, seed))
        .sessions
        .into_iter()
        .take(100)
        .map(|s| RawItem::Session(Box::new(s)))
        .collect()
}

fn faulty_post_items() -> Vec<RawItem> {
    gen_forum(&ForumConfig {
        authors: 250,
        ..ForumConfig::default()
    })
    .posts
    .into_iter()
    .take(120)
    .map(|p| RawItem::Post(Box::new(p)))
    .collect()
}

/// The two faulty feeds, freshly constructed on the given clock (the
/// fault decisions are pure in `hash(seed, item index)`, so daemon and
/// mirror see identical streams even though their clocks advance
/// differently).
fn faulty_feeds(seed: u64, clock: Arc<dyn Clock>) -> Vec<Box<dyn Source>> {
    let session_plan = FaultPlan::seeded(seed)
        .with_drops(0.03)
        .with_transient(0.05, 1)
        .with_burst(40..46)
        .with_poison(10);
    let post_plan = FaultPlan::seeded(seed ^ 0x9E37_79B9)
        .with_drops(0.02)
        .with_corruption(0.03);
    vec![
        Box::new(FaultInjector::new(
            ItemSource::new("conference-telemetry", faulty_session_items(seed)),
            session_plan,
            Arc::clone(&clock),
        )),
        Box::new(FaultInjector::new(
            ItemSource::new("forum-crawl", faulty_post_items()),
            post_plan,
            clock,
        )),
    ]
}

/// Manual mirror of the daemon's tick loop: window every live feed with
/// `TakeSource`, run one ingest per tick, retire feeds by the daemon's
/// rule (disconnected, or a tick with zero activity).
fn faulty_reference(fx_base: &(CallDataset, Forum), seed: u64, workers: usize) -> UsaasService {
    let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
    let svc = UsaasService::build(fx_base.0.clone(), fx_base.1.clone(), workers);
    let cfg = IngestConfig::with_workers(workers).with_clock(clock.clone());
    let mut feeds = faulty_feeds(seed, clock.clone());
    let mut done = vec![false; feeds.len()];
    for _ in 0..MAX_FAULTY_TICKS {
        if done.iter().all(|d| *d) {
            break;
        }
        let mut polled = Vec::new();
        let mut sources: Vec<Box<dyn Source + '_>> = Vec::new();
        for (i, feed) in feeds.iter_mut().enumerate() {
            if done[i] {
                continue;
            }
            polled.push(i);
            sources.push(Box::new(TakeSource::new(feed.as_mut(), FAULTY_WINDOW)));
        }
        let report = svc.ingest_append(sources, &cfg);
        for (k, &i) in polled.iter().enumerate() {
            let health = &report.sources[k];
            let active =
                health.fed + health.quarantined + health.retries + health.dropped + health.skipped
                    > 0;
            if health.disconnected || !active {
                done[i] = true;
            }
        }
        clock.sleep_ms(1_000);
    }
    svc
}

const FAULTY_WINDOW: usize = 25;
const MAX_FAULTY_TICKS: usize = 40;

#[test]
fn faulty_soak_is_worker_invariant_and_matches_the_mirror() {
    let base = (
        generate(&DatasetConfig::small(60, 21)),
        Forum { posts: Vec::new() },
    );
    for seed in fault_seeds() {
        let mut prints: Vec<Vec<String>> = Vec::new();
        for workers in [1usize, 4, 8] {
            let dir = tmp_dir(&format!("faulty-s{seed}-w{workers}"));
            let clock = Arc::new(VirtualClock::new());
            let svc = Arc::new(
                UsaasService::build_persistent(base.0.clone(), base.1.clone(), workers, &dir)
                    .unwrap(),
            );
            let daemon = Daemon::new(
                Arc::clone(&svc),
                daemon_config(workers, clock.clone(), FAULTY_WINDOW),
            );
            for feed in faulty_feeds(seed, clock.clone()) {
                daemon.register_feed(feed);
            }
            for _ in 0..MAX_FAULTY_TICKS {
                if daemon.health().feeds.iter().all(|f| f.done) {
                    break;
                }
                let report = daemon.tick();
                assert!(report.errors.is_empty(), "{:?}", report.errors);
                clock.sleep_ms(1_000);
            }
            assert!(
                daemon.health().feeds.iter().all(|f| f.done),
                "seed {seed}: feeds never drained"
            );
            let health = svc.health();
            assert!(
                health.quarantined_total > 0,
                "seed {seed}: the fault plan produced no dead letters — vacuous"
            );

            let reference = faulty_reference(&base, seed, workers);
            let live = fingerprint(&svc);
            assert_eq!(
                live,
                fingerprint(&reference),
                "seed {seed} workers={workers}: daemon diverged from the mirror"
            );
            prints.push(live);
            let _ = fs::remove_dir_all(&dir);
        }
        assert_eq!(prints[0], prints[1], "seed {seed}: workers 1 vs 4");
        assert_eq!(prints[0], prints[2], "seed {seed}: workers 1 vs 8");
    }
}

// ---------------------------------------------------------------------
// 3. Bounded journal across ≥ 3 compaction cycles.
// ---------------------------------------------------------------------

/// A tiny base plus a long trickle feed: appends outgrow the full-snapshot
/// base repeatedly, so the auto-chooser keeps writing fulls, retention
/// keeps aging out old ones, and compaction keeps finding records to drop.
fn bounded_fixture() -> (CallDataset, Vec<RawItem>) {
    let mut base = generate(&DatasetConfig::small(24, 3));
    base.sessions.truncate(20);
    let feed: Vec<RawItem> = generate(&DatasetConfig::small(420, 13))
        .sessions
        .into_iter()
        .take(400)
        .map(|s| RawItem::Session(Box::new(s)))
        .collect();
    (base, feed)
}

#[test]
fn journal_stays_bounded_across_compaction_cycles() {
    let (base, feed) = bounded_fixture();
    let total_items = feed.len();
    let window = 8usize;
    let ticks = total_items / window + 2;
    let dir = tmp_dir("bounded");
    let clock = Arc::new(VirtualClock::new());
    let svc = Arc::new(
        UsaasService::build_persistent(base, Forum { posts: Vec::new() }, 4, &dir).unwrap(),
    );
    let mut cfg = daemon_config(4, clock.clone(), window);
    cfg.checkpoint_every_ms = 1_500; // checkpoint (and compact) every other tick
    let daemon = Daemon::new(Arc::clone(&svc), cfg);
    daemon.register_feed(Box::new(ItemSource::new("trickle", feed)));

    let mut compaction_passes = Vec::new();
    for _ in 0..ticks {
        let report = daemon.tick();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        if let Some(c) = report.compaction {
            if c.dropped_records > 0 {
                assert!(
                    c.bytes_after < c.bytes_before,
                    "a dropping pass must shrink the file: {c:?}"
                );
                compaction_passes.push(c);
            }
        }
        clock.sleep_ms(1_000);
    }
    assert!(
        compaction_passes.len() >= 3,
        "need ≥ 3 compaction cycles, got {}",
        compaction_passes.len()
    );
    for pair in compaction_passes.windows(2) {
        assert!(
            pair[1].safe_seq > pair[0].safe_seq,
            "the safety bound must advance: {pair:?}"
        );
    }

    let stats = svc.health().journal.expect("persistent service has stats");
    assert_eq!(stats.compactions, compaction_passes.len() as u64);
    assert!(stats.records_compacted > 0);
    assert!(stats.oldest_live_seq > 1, "old records were dropped");
    assert_eq!(
        stats.records,
        stats.last_seq - stats.oldest_live_seq + 1,
        "live records pinned to the seq range"
    );
    assert!(
        stats.last_seq >= 40,
        "the workload appended a long history (got {})",
        stats.last_seq
    );
    // Bounded: the tail the journal keeps is pinned behind the newest
    // retained full snapshot, so a majority of the history is gone. (The
    // auto-chooser's full-snapshot cadence is geometric in dataset size,
    // so the tail is a fraction of the history, not a fixed constant.)
    assert!(
        stats.records_compacted >= 15,
        "compaction dropped a real share of the history: {stats:?}"
    );
    assert!(
        stats.oldest_live_seq > stats.last_seq / 3,
        "the live tail starts well past the oldest history: {stats:?}"
    );
    assert!(
        stats.records <= 32,
        "the journal holds a bounded tail, not the history: {} records",
        stats.records
    );

    // Boundedness did not cost recoverability: the drained directory
    // reopens clean and bit-identical, at two worker counts.
    let drain = daemon.shutdown();
    assert!(drain.errors.is_empty(), "{:?}", drain.errors);
    let live = fingerprint(&svc);
    drop(daemon);
    drop(svc);
    for workers in [1usize, 4] {
        let reopened = UsaasService::open_or_recover(&dir, workers).unwrap();
        assert!(
            reopened.health().recovery_warnings.is_empty(),
            "{:?}",
            reopened.health().recovery_warnings
        );
        assert_eq!(fingerprint(&reopened), live, "workers={workers}");
    }
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// 4. Mid-compaction kill points.
// ---------------------------------------------------------------------

#[test]
fn mid_compaction_kill_points_recover_clean() {
    let (base, feed) = bounded_fixture();
    let dir = tmp_dir("killpoints");
    let clock = Arc::new(VirtualClock::new());
    let svc = Arc::new(
        UsaasService::build_persistent(base, Forum { posts: Vec::new() }, 4, &dir).unwrap(),
    );
    let mut cfg = daemon_config(4, clock.clone(), 8);
    cfg.checkpoint_every_ms = 1_500;
    let daemon = Daemon::new(Arc::clone(&svc), cfg);
    daemon.register_feed(Box::new(ItemSource::new("trickle", feed)));
    let mut compacted = 0;
    for _ in 0..60 {
        let report = daemon.tick();
        if report.compaction.map(|c| c.dropped_records > 0) == Some(true) {
            compacted += 1;
        }
        clock.sleep_ms(1_000);
        if compacted >= 2 {
            break;
        }
    }
    assert!(compacted >= 2, "workload never compacted twice");
    let stats = svc.health().journal.unwrap();
    assert!(stats.oldest_live_seq > 1);
    let live = fingerprint(&svc);
    drop(daemon);
    drop(svc);

    // Kill point A: crash *before* the compaction rename — the old journal
    // is intact and a stray half-written journal.tmp sits next to it.
    // Recovery must ignore the tmp entirely.
    {
        let crash = tmp_dir("killpoints-prerename");
        copy_dir(&dir, &crash);
        let journal_bytes = fs::read(crash.join(JOURNAL_FILE)).unwrap();
        let mut tmp = journal_bytes[..journal_bytes.len() / 2].to_vec();
        tmp.extend_from_slice(b"\xDE\xAD\xBE\xEF torn compaction scratch");
        fs::write(crash.join("journal.tmp"), tmp).unwrap();
        let recovered = UsaasService::open_or_recover(&crash, 4).unwrap();
        assert!(
            recovered.health().recovery_warnings.is_empty(),
            "a stray journal.tmp must not surface: {:?}",
            recovered.health().recovery_warnings
        );
        assert_eq!(fingerprint(&recovered), live, "pre-rename crash state");
        let _ = fs::remove_dir_all(&crash);
    }

    // Kill point B: crash *after* the rename — the live directory IS that
    // state (its journal is the compacted file). Then cut the compacted
    // journal at every surviving record boundary: each prefix must
    // recover with zero warnings (in particular no "journal gap" — the
    // compaction bound guarantees every loadable snapshot covers the
    // dropped records) and answer worker-invariantly.
    let offsets = journal_record_offsets(&dir.join(JOURNAL_FILE)).unwrap();
    assert!(offsets.len() > 2, "compacted journal still has a tail");
    let oldest = stats.oldest_live_seq;
    for (k, &cut_at) in offsets.iter().enumerate() {
        let crash = tmp_dir(&format!("killpoints-cut{k}"));
        copy_dir(&dir, &crash);
        fs::OpenOptions::new()
            .write(true)
            .open(crash.join(JOURNAL_FILE))
            .unwrap()
            .set_len(cut_at)
            .unwrap();
        // A crash at this boundary predates snapshots covering later seqs.
        let cut_seq = oldest + k as u64 - u64::from(k > 0);
        drop_snapshots_after(&crash, if k == 0 { oldest - 1 } else { cut_seq });

        let a = UsaasService::open_or_recover(&crash, 1).unwrap();
        let wa = a.health().recovery_warnings;
        assert!(wa.is_empty(), "cut {k}: unexpected warnings {wa:?}");
        let b = UsaasService::open_or_recover(&crash, 4).unwrap();
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "cut {k}: recovery must be worker-invariant"
        );
        let _ = fs::remove_dir_all(&crash);
    }

    // The uncut directory still recovers to the live state.
    let recovered = UsaasService::open_or_recover(&dir, 4).unwrap();
    assert_eq!(fingerprint(&recovered), live);
    let _ = fs::remove_dir_all(&dir);
}

/// The journal sequence a persisted file covers: `snapshot-<seq>.snap`
/// or `diff-<base>-<seq>.snap`.
fn persisted_seq(name: &str) -> Option<u64> {
    let mid = name.strip_suffix(".snap")?;
    if let Some(seq) = mid.strip_prefix("snapshot-") {
        return seq.parse().ok();
    }
    let (_base, seq) = mid.strip_prefix("diff-")?.split_once('-')?;
    seq.parse().ok()
}

/// Remove snapshots (full or differential) that would not have existed at
/// a crash after journal seq `k`.
fn drop_snapshots_after(dir: &Path, k: u64) {
    for entry in fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = persisted_seq(name) {
            if seq > k {
                fs::remove_file(entry.path()).unwrap();
            }
        }
    }
}

// ---------------------------------------------------------------------
// 5. Cluster daemon: trusted + faulty soaks vs a manual cluster schedule.
// ---------------------------------------------------------------------

/// [`fingerprint`]'s cluster twin — same shape, so a cluster's print can
/// be compared across partition counts as well as against a manually
/// scheduled cluster.
fn cluster_fingerprint(svc: &PartitionedService) -> Vec<String> {
    let health = svc.health();
    let mut out = vec![
        format!("epoch={}", svc.epoch()),
        format!("signals={:?}", svc.signal_counts()),
        format!(
            "health q={} u={} t={} open={:?} dropped={}",
            health.quarantined_total,
            health.unfed_total,
            health.breaker_trips_total,
            health.open_breakers,
            health.dead_letters_dropped,
        ),
        format!("dead_letters={:?}", svc.dead_letters()),
    ];
    for q in queries() {
        out.push(format!("{q:?} => {:?}", svc.query(&q)));
    }
    out
}

impl TrustedFixture {
    /// The manual *cluster* schedule the cluster daemon must match — the
    /// same per-tick batches as [`TrustedFixture::reference`], appended
    /// through the router.
    fn cluster_reference(
        &self,
        window: usize,
        ticks: usize,
        partitions: usize,
        workers: usize,
    ) -> PartitionedService {
        let svc = PartitionedService::build(
            self.dataset.clone(),
            self.forum.clone(),
            partitions,
            workers,
        );
        let mut offset = 0usize;
        for tick in 0..ticks {
            let submitted = self
                .submits
                .iter()
                .find(|(at, _)| *at == tick)
                .map(|(_, items)| items.as_slice())
                .unwrap_or(&[]);
            let take = window.min(self.feed_items.len() - offset);
            let window_items = &self.feed_items[offset..offset + take];
            offset += take;
            let (mut sessions, mut posts) = split_kinds(submitted);
            let (ws, wp) = split_kinds(window_items);
            sessions.extend(ws);
            posts.extend(wp);
            svc.append_batch(sessions, posts);
        }
        svc
    }
}

#[test]
fn cluster_trusted_soak_matches_manual_schedule_bit_identically() {
    let fx = TrustedFixture::new();
    let window = 16usize;
    let active_ticks = fx.feed_items.len().div_ceil(window);
    let ticks = active_ticks + 4;

    let mut prints: Vec<Vec<String>> = Vec::new();
    for partitions in [1usize, 2, 4] {
        for workers in [1usize, 4, 8] {
            let dir = tmp_dir(&format!("cluster-trusted-p{partitions}-w{workers}"));
            let clock = Arc::new(VirtualClock::new());
            let svc = Arc::new(
                PartitionedService::build_persistent(
                    fx.dataset.clone(),
                    fx.forum.clone(),
                    partitions,
                    workers,
                    &dir,
                )
                .unwrap(),
            );
            let daemon = Daemon::new(
                Arc::clone(&svc),
                daemon_config(workers, clock.clone(), window),
            );
            daemon.register_feed(Box::new(ItemSource::new(
                "telemetry-feed",
                fx.feed_items.clone(),
            )));
            let mut unit_checkpoints = 0usize;
            let mut root_passes = 0usize;
            for tick in 0..ticks {
                if let Some((_, items)) = fx.submits.iter().find(|(at, _)| *at == tick) {
                    assert!(matches!(
                        daemon.submit(items.clone()),
                        usaas::SubmitOutcome::Queued { .. }
                    ));
                }
                let report = daemon.tick();
                assert!(report.errors.is_empty(), "{:?}", report.errors);
                unit_checkpoints += report.checkpointed_units.len();
                root_passes += usize::from(report.root_compaction.is_some());
                clock.sleep_ms(1_000);
            }
            assert!(
                unit_checkpoints >= 2 * partitions,
                "p{partitions}: every partition must checkpoint on its cadence"
            );
            assert!(root_passes >= 1, "p{partitions}: root compaction never ran");

            let drain = daemon.shutdown();
            assert!(drain.errors.is_empty(), "{:?}", drain.errors);
            assert!(drain.checkpoint.is_some());
            assert!(drain.root_compaction.is_some());

            let reference = fx.cluster_reference(window, ticks, partitions, workers);
            let live = cluster_fingerprint(&svc);
            assert_eq!(
                live,
                cluster_fingerprint(&reference),
                "p{partitions} w{workers}: cluster daemon diverged from the manual schedule"
            );

            drop(daemon);
            drop(svc);
            let reopened = PartitionedService::open_or_recover(&dir, workers).unwrap();
            assert!(
                reopened.health().recovery_warnings.is_empty(),
                "drained cluster must reopen clean: {:?}",
                reopened.health().recovery_warnings
            );
            assert_eq!(cluster_fingerprint(&reopened), live);
            prints.push(live);
            let _ = fs::remove_dir_all(&dir);
        }
    }
    for (i, print) in prints.iter().enumerate().skip(1) {
        assert_eq!(&prints[0], print, "matrix entry {i} diverged");
    }
}

/// Manual cluster mirror of the daemon's faulty tick loop — the cluster
/// twin of [`faulty_reference`].
fn cluster_faulty_reference(
    fx_base: &(CallDataset, Forum),
    seed: u64,
    partitions: usize,
    workers: usize,
) -> PartitionedService {
    let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
    let svc = PartitionedService::build(fx_base.0.clone(), fx_base.1.clone(), partitions, workers);
    let cfg = IngestConfig::with_workers(workers).with_clock(clock.clone());
    let mut feeds = faulty_feeds(seed, clock.clone());
    let mut done = vec![false; feeds.len()];
    for _ in 0..MAX_FAULTY_TICKS {
        if done.iter().all(|d| *d) {
            break;
        }
        let mut polled = Vec::new();
        let mut sources: Vec<Box<dyn Source + '_>> = Vec::new();
        for (i, feed) in feeds.iter_mut().enumerate() {
            if done[i] {
                continue;
            }
            polled.push(i);
            sources.push(Box::new(TakeSource::new(feed.as_mut(), FAULTY_WINDOW)));
        }
        let report = svc.ingest_append(sources, &cfg);
        for (k, &i) in polled.iter().enumerate() {
            let health = &report.sources[k];
            let active =
                health.fed + health.quarantined + health.retries + health.dropped + health.skipped
                    > 0;
            if health.disconnected || !active {
                done[i] = true;
            }
        }
        clock.sleep_ms(1_000);
    }
    svc
}

#[test]
fn cluster_faulty_soak_is_partition_and_worker_invariant() {
    let base = (
        generate(&DatasetConfig::small(60, 21)),
        Forum { posts: Vec::new() },
    );
    for seed in fault_seeds() {
        let mut prints: Vec<Vec<String>> = Vec::new();
        for partitions in [1usize, 2, 4] {
            for workers in [1usize, 4, 8] {
                let dir = tmp_dir(&format!("cluster-faulty-s{seed}-p{partitions}-w{workers}"));
                let clock = Arc::new(VirtualClock::new());
                let svc = Arc::new(
                    PartitionedService::build_persistent(
                        base.0.clone(),
                        base.1.clone(),
                        partitions,
                        workers,
                        &dir,
                    )
                    .unwrap(),
                );
                let daemon = Daemon::new(
                    Arc::clone(&svc),
                    daemon_config(workers, clock.clone(), FAULTY_WINDOW),
                );
                for feed in faulty_feeds(seed, clock.clone()) {
                    daemon.register_feed(feed);
                }
                for _ in 0..MAX_FAULTY_TICKS {
                    if daemon.health().feeds.iter().all(|f| f.done) {
                        break;
                    }
                    let report = daemon.tick();
                    assert!(report.errors.is_empty(), "{:?}", report.errors);
                    clock.sleep_ms(1_000);
                }
                assert!(
                    daemon.health().feeds.iter().all(|f| f.done),
                    "seed {seed} p{partitions}: feeds never drained"
                );
                assert!(
                    svc.health().quarantined_total > 0,
                    "seed {seed}: the fault plan produced no dead letters — vacuous"
                );

                let reference = cluster_faulty_reference(&base, seed, partitions, workers);
                let live = cluster_fingerprint(&svc);
                assert_eq!(
                    live,
                    cluster_fingerprint(&reference),
                    "seed {seed} p{partitions} w{workers}: diverged from the mirror"
                );
                prints.push(live);
                let _ = fs::remove_dir_all(&dir);
            }
        }
        for (i, print) in prints.iter().enumerate().skip(1) {
            assert_eq!(&prints[0], print, "seed {seed}: matrix entry {i} diverged");
        }
    }
}

// ---------------------------------------------------------------------
// 6. Cluster root log bounded across ≥ 3 root-compaction passes.
// ---------------------------------------------------------------------

#[test]
fn cluster_root_log_stays_bounded_across_compaction_cycles() {
    let (base, feed) = bounded_fixture();
    let dir = tmp_dir("cluster-bounded");
    let clock = Arc::new(VirtualClock::new());
    let svc = Arc::new(
        PartitionedService::build_persistent(base, Forum { posts: Vec::new() }, 2, 4, &dir)
            .unwrap(),
    );
    let mut cfg = daemon_config(4, clock.clone(), 10);
    cfg.checkpoint_every_ms = 1_500;
    let daemon = Daemon::new(Arc::clone(&svc), cfg);
    // A seeded faulty feed alongside the trickle, so the soak (and the
    // state the root snapshot must carry — dead letters, breaker totals)
    // is the degraded-serving path, not the happy path.
    daemon.register_feed(Box::new(FaultInjector::new(
        ItemSource::new("flaky-telemetry", faulty_session_items(5)),
        FaultPlan::seeded(5)
            .with_drops(0.03)
            .with_transient(0.05, 1)
            .with_poison(17),
        clock.clone() as Arc<dyn Clock>,
    )));
    daemon.register_feed(Box::new(ItemSource::new("trickle", feed)));

    let mut root_passes: Vec<usaas::CompactionReport> = Vec::new();
    for tick in 0..60u64 {
        // Periodic operator maintenance: roll every partition's full
        // snapshot, so the oldest-retained-full floors (and with them the
        // root log's safety bound) keep advancing through the soak.
        if tick % 8 == 7 {
            svc.checkpoint_full().unwrap();
        }
        let report = daemon.tick();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        if let Some(c) = report.root_compaction {
            if c.dropped_records > 0 {
                assert!(
                    c.bytes_after < c.bytes_before,
                    "a dropping root pass must shrink the log: {c:?}"
                );
                root_passes.push(c);
            }
        }
        clock.sleep_ms(1_000);
        if daemon.health().feeds.iter().all(|f| f.done) {
            break;
        }
    }
    assert!(
        root_passes.len() >= 3,
        "need ≥ 3 dropping root-compaction passes, got {}",
        root_passes.len()
    );
    for pair in root_passes.windows(2) {
        assert!(
            pair[1].safe_seq > pair[0].safe_seq,
            "the root safety bound must advance: {pair:?}"
        );
    }
    assert!(
        svc.health().quarantined_total > 0,
        "the fault plan produced no dead letters — vacuous"
    );

    let mid_soak = svc.root_journal_stats().expect("persistent cluster");
    assert_eq!(
        mid_soak.records,
        mid_soak.last_seq - mid_soak.oldest_live_seq + 1,
        "root live records pinned to the seq range"
    );
    assert!(
        mid_soak.oldest_live_seq > 1,
        "the absorbed prefix was dropped"
    );
    assert_eq!(mid_soak.compactions, root_passes.len() as u64);
    assert!(mid_soak.records_compacted as usize >= root_passes.len());

    let drain = daemon.shutdown();
    assert!(drain.errors.is_empty(), "{:?}", drain.errors);
    // The drain checkpointed every partition and ran a final root pass, so
    // the floors have caught up: the log now holds only the short tail
    // behind the retained snapshots, not the appended history.
    let stats = svc.root_journal_stats().unwrap();
    assert_eq!(stats.records, stats.last_seq - stats.oldest_live_seq + 1);
    assert!(
        stats.oldest_live_seq > stats.last_seq / 2,
        "the live tail starts well past the oldest history: {stats:?}"
    );
    assert!(
        stats.records <= 24,
        "the root log holds a bounded tail, not the history: {} of {} records",
        stats.records,
        stats.last_seq
    );
    // Cluster root snapshots are themselves bounded by retention.
    let snaps = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .filter(|n| n.starts_with("cluster-") && n.ends_with(".snap"))
        .count();
    assert!(
        snaps <= 2,
        "cluster snapshot retention leaked: {snaps} files"
    );
    let live = cluster_fingerprint(&svc);
    drop(daemon);
    drop(svc);
    for workers in [1usize, 4] {
        let reopened = PartitionedService::open_or_recover(&dir, workers).unwrap();
        assert!(
            reopened.health().recovery_warnings.is_empty(),
            "{:?}",
            reopened.health().recovery_warnings
        );
        assert_eq!(cluster_fingerprint(&reopened), live, "workers={workers}");
    }
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// 7. Mid-root-compaction kill points.
// ---------------------------------------------------------------------

/// Newest `cluster-<seq>.snap` in a cluster directory.
fn newest_cluster_snap(dir: &Path) -> Option<PathBuf> {
    fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().ok()?;
            let seq: u64 = name
                .strip_prefix("cluster-")?
                .strip_suffix(".snap")?
                .parse()
                .ok()?;
            Some((seq, dir.join(name)))
        })
        .max_by_key(|(seq, _)| *seq)
        .map(|(_, path)| path)
}

#[test]
fn mid_root_compaction_kill_points_recover_bit_identical() {
    for partitions in [1usize, 2, 4] {
        let (base, feed) = bounded_fixture();
        let dir = tmp_dir(&format!("cluster-killpoints-p{partitions}"));
        let clock = Arc::new(VirtualClock::new());
        let svc = Arc::new(
            PartitionedService::build_persistent(
                base,
                Forum { posts: Vec::new() },
                partitions,
                4,
                &dir,
            )
            .unwrap(),
        );
        let mut cfg = daemon_config(4, clock.clone(), 8);
        // Checkpoints and root compaction are driven manually below: the
        // kill states need directory copies immediately around one
        // dropping compact_root_log call, which a daemon-scheduled pass
        // cannot provide.
        cfg.checkpoint_every_ms = 0;
        let daemon = Daemon::new(Arc::clone(&svc), cfg);
        daemon.register_feed(Box::new(ItemSource::new("trickle", feed)));

        let tick = |n: usize| {
            for _ in 0..n {
                let report = daemon.tick();
                assert!(report.errors.is_empty(), "{:?}", report.errors);
                clock.sleep_ms(1_000);
            }
        };

        // Warm-up: append a little, checkpoint everything, absorb the base
        // record — this also seeds the cluster-snapshot retention so later
        // passes always leave a fallback snapshot behind.
        tick(3);
        svc.checkpoint().unwrap();
        svc.compact_root_log().unwrap();

        // Drive until a root pass actually drops ingest records, keeping a
        // directory copy from immediately before that pass.
        let pre = tmp_dir(&format!("cluster-killpoints-p{partitions}-pre"));
        let mut dropped = 0u64;
        for _attempt in 0..16 {
            tick(3);
            svc.checkpoint().unwrap();
            let _ = fs::remove_dir_all(&pre);
            copy_dir(&dir, &pre);
            let report = svc.compact_root_log().unwrap();
            if report.dropped_records > 0 {
                dropped = report.dropped_records;
                break;
            }
        }
        assert!(
            dropped > 0,
            "p{partitions}: no root pass ever dropped ingest records"
        );
        let live = cluster_fingerprint(&svc);
        drop(daemon);
        drop(svc);

        // The uncompacted reference: recovery from the pre-pass copy.
        let reference = {
            let svc = PartitionedService::open_or_recover(&pre, 4).unwrap();
            let warnings = svc.health().recovery_warnings;
            assert!(warnings.is_empty(), "p{partitions} pre: {warnings:?}");
            cluster_fingerprint(&svc)
        };
        assert_eq!(reference, live, "p{partitions}: reference != live state");

        // Kill point A: crash before the root snapshot finished writing —
        // stray cluster.tmp and journal.tmp scratch next to an intact log.
        let kill_a = tmp_dir(&format!("cluster-killpoints-p{partitions}-a"));
        copy_dir(&pre, &kill_a);
        fs::write(
            kill_a.join("cluster.tmp"),
            b"\xDE\xAD torn cluster snapshot",
        )
        .unwrap();
        let log = fs::read(kill_a.join(JOURNAL_FILE)).unwrap();
        fs::write(kill_a.join("journal.tmp"), &log[..log.len() / 2]).unwrap();

        // Kill point B: root snapshot durably written, log not yet
        // compacted — the post-pass snapshot dropped into the pre-pass dir.
        let kill_b = tmp_dir(&format!("cluster-killpoints-p{partitions}-b"));
        copy_dir(&pre, &kill_b);
        let snap = newest_cluster_snap(&dir).expect("the dropping pass wrote a snapshot");
        fs::copy(&snap, kill_b.join(snap.file_name().unwrap())).unwrap();

        // Kill point C: the completed pass (the live directory itself).
        // Kill point D: completed pass, newest cluster snapshot corrupt at
        // rest — recovery must fall back to the retained older snapshot
        // (with a warning) and still reproduce the state.
        let kill_d = tmp_dir(&format!("cluster-killpoints-p{partitions}-d"));
        copy_dir(&dir, &kill_d);
        let newest = newest_cluster_snap(&kill_d).unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newest, bytes).unwrap();

        for workers in [1usize, 4, 8] {
            for (label, state, warnings_ok) in [
                ("A:pre-snapshot", &kill_a, false),
                ("B:snapshot-no-compact", &kill_b, false),
                ("C:complete", &dir, false),
                ("D:corrupt-newest-snap", &kill_d, true),
            ] {
                let recovered = PartitionedService::open_or_recover(state, workers).unwrap();
                let warnings = recovered.health().recovery_warnings;
                if warnings_ok {
                    assert!(
                        warnings.iter().any(|w| w.contains("unusable")),
                        "p{partitions} {label}: expected a fallback warning, got {warnings:?}"
                    );
                } else {
                    assert!(
                        warnings.is_empty(),
                        "p{partitions} {label} w{workers}: {warnings:?}"
                    );
                }
                assert_eq!(
                    cluster_fingerprint(&recovered),
                    reference,
                    "p{partitions} {label} w{workers}: diverged from the uncompacted reference"
                );
            }
        }
        for d in [&pre, &kill_a, &kill_b, &kill_d, &dir] {
            let _ = fs::remove_dir_all(d);
        }
    }
}

// ---------------------------------------------------------------------
// 8. Daemon timing/admission bugfix sweep.
// ---------------------------------------------------------------------

/// Failed periodic checkpoints must re-arm with a capped exponential
/// backoff (1×, 2×, 4×, then 8× the cadence), not retry fsync-heavy work
/// every tick.
#[test]
fn failed_checkpoints_back_off_instead_of_retrying_every_tick() {
    let dir = tmp_dir("checkpoint-backoff");
    let clock = Arc::new(VirtualClock::new());
    let svc = Arc::new(
        UsaasService::build_persistent(
            generate(&DatasetConfig::small(24, 3)),
            Forum { posts: Vec::new() },
            2,
            &dir,
        )
        .unwrap(),
    );
    let mut cfg = daemon_config(2, clock.clone(), 8);
    cfg.checkpoint_every_ms = 2_000;
    cfg.compact_journal = false;
    let daemon = Daemon::new(Arc::clone(&svc), cfg);
    // Sabotage the persist directory so every checkpoint attempt fails.
    fs::remove_dir_all(&dir).unwrap();

    let mut failure_times = Vec::new();
    for _ in 0..33 {
        let report = daemon.tick();
        if !report.errors.is_empty() {
            assert!(
                report.errors[0].contains("periodic checkpoint failed"),
                "{:?}",
                report.errors
            );
            failure_times.push(clock.now_ms());
        }
        clock.sleep_ms(1_000);
    }
    assert_eq!(
        failure_times,
        vec![2_000, 4_000, 8_000, 16_000, 32_000],
        "retries must follow the capped exponential backoff, not fire every tick"
    );
}

/// The Block admission deadline is exact even when the poll step exceeds
/// the remaining budget (`block_timeout_ms = 5, block_poll_ms = 10` must
/// block 5 ms, not 10) or doesn't divide it.
#[test]
fn block_admission_deadline_is_exact_on_the_virtual_clock() {
    for (timeout, poll) in [(5u64, 10u64), (100, 30), (25, 25)] {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = DaemonConfig::with_workers(2);
        cfg.ingest = IngestConfig::with_workers(2).with_clock(clock.clone());
        cfg.checkpoint_every_ms = 0;
        cfg.queue_capacity = 2;
        cfg.admission = usaas::AdmissionPolicy::Block;
        cfg.block_timeout_ms = timeout;
        cfg.block_poll_ms = poll;
        let svc = Arc::new(UsaasService::build(
            generate(&DatasetConfig::small(8, 3)),
            Forum { posts: Vec::new() },
            2,
        ));
        let daemon = Daemon::new(svc, cfg);
        let items: Vec<RawItem> = generate(&DatasetConfig::small(8, 9))
            .sessions
            .into_iter()
            .take(2)
            .map(|s| RawItem::Session(Box::new(s)))
            .collect();
        assert!(matches!(
            daemon.submit(items.clone()),
            usaas::SubmitOutcome::Queued { .. }
        ));
        let before = clock.now_ms();
        assert_eq!(
            daemon.submit(items),
            usaas::SubmitOutcome::Rejected {
                reason: usaas::RejectReason::BlockTimeout
            }
        );
        assert_eq!(
            clock.now_ms() - before,
            timeout,
            "timeout={timeout} poll={poll}: the deadline must be exact"
        );
    }
}

/// `stop()` interrupts the between-tick sleep within the poll step — a
/// run loop parked in a 5-second wall-clock sleep must join promptly.
#[test]
fn stop_interrupts_the_tick_sleep_quickly() {
    use std::time::{Duration, Instant};
    let svc = Arc::new(UsaasService::build(
        generate(&DatasetConfig::small(8, 3)),
        Forum { posts: Vec::new() },
        2,
    ));
    let mut cfg = DaemonConfig::with_workers(2);
    cfg.tick_ms = 5_000;
    cfg.checkpoint_every_ms = 0;
    let daemon = Arc::new(Daemon::new(svc, cfg));
    let handle = daemon.spawn();
    // Let the loop run its first tick and park in the tick sleep.
    std::thread::sleep(Duration::from_millis(100));
    let begun = Instant::now();
    daemon.stop();
    handle.join().unwrap();
    let elapsed = begun.elapsed();
    assert!(
        elapsed < Duration::from_millis(2_000),
        "stop took {elapsed:?} against a 5s tick — the sleep was not interruptible"
    );
}
