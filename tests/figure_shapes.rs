//! Integration-scale reproduction checks for the §3 figures (Fig. 1–4).
//!
//! These run the *full* pipeline — path simulation → mitigation → behaviour
//! → client telemetry → correlation engine — at a dataset size large enough
//! for the confounder-filtered bins to be well populated, and assert the
//! paper's reported magnitudes (as shapes with tolerances, per DESIGN.md §5).

use conference::dataset::{generate, DatasetConfig};
use conference::records::{CallDataset, EngagementMetric, NetworkMetric};
use std::sync::OnceLock;
use usaas::correlate;

fn dataset() -> &'static CallDataset {
    static DS: OnceLock<CallDataset> = OnceLock::new();
    DS.get_or_init(|| {
        generate(&DatasetConfig {
            calls: 15_000,
            seed: 0xF19,
            ..DatasetConfig::default()
        })
    })
}

fn drop_pct(curve: &analytics::BinnedCurve) -> f64 {
    let first = curve.first_y().expect("populated curve");
    let last = curve.last_y().expect("populated curve");
    first - last
}

/// F1a — Fig. 1 (left): latency. Presence and Cam On fall ≈ 20 %, Mic On
/// more than 25 %, with the Mic On slope steeper before 150 ms.
#[test]
fn fig1_latency_panel() {
    let ds = dataset();
    let mic =
        correlate::engagement_curve(ds, NetworkMetric::LatencyMs, EngagementMetric::MicOn, 6, 12)
            .unwrap();
    let cam =
        correlate::engagement_curve(ds, NetworkMetric::LatencyMs, EngagementMetric::CamOn, 6, 12)
            .unwrap();
    let presence = correlate::engagement_curve(
        ds,
        NetworkMetric::LatencyMs,
        EngagementMetric::Presence,
        6,
        12,
    )
    .unwrap();
    let mic_drop = drop_pct(&mic);
    let cam_drop = drop_pct(&cam);
    let presence_drop = drop_pct(&presence);
    assert!(mic_drop > 20.0, "Mic On drop {mic_drop} (paper: >25%)");
    assert!(
        (8.0..40.0).contains(&cam_drop),
        "Cam On drop {cam_drop} (paper: ~20%)"
    );
    assert!(
        (6.0..35.0).contains(&presence_drop),
        "Presence drop {presence_drop} (paper: ~20%)"
    );
    // Mic On is the steepest responder — muting is the means of first resort.
    assert!(
        mic_drop >= cam_drop - 2.0 && mic_drop >= presence_drop,
        "{mic_drop} {cam_drop} {presence_drop}"
    );
    // Knee: slope up to 150 ms much steeper than beyond.
    let pre = mic.slope_between(25.0, 125.0).unwrap().abs();
    let post = mic.slope_between(175.0, 275.0).unwrap().abs();
    assert!(
        pre > 1.5 * post,
        "Mic On knee: pre-150ms slope {pre} vs post {post}"
    );
}

/// F1b — Fig. 1 (middle-left): loss ≤ 2 % barely moves engagement.
#[test]
fn fig1_loss_panel() {
    let ds = dataset();
    // Four half-percent bins keep the thin high-loss aggregates stable.
    for metric in EngagementMetric::ALL {
        let c = correlate::engagement_curve(ds, NetworkMetric::LossPct, metric, 4, 12).unwrap();
        let drop = drop_pct(&c);
        assert!(
            drop < 10.0,
            "{}: dropped {drop}% at 2% loss (paper: <10%)",
            metric.label()
        );
    }
}

/// F1c — Fig. 1 (middle-right): jitter hits Cam On hardest (> 15 % at 10 ms).
#[test]
fn fig1_jitter_panel() {
    let ds = dataset();
    let cam =
        correlate::engagement_curve(ds, NetworkMetric::JitterMs, EngagementMetric::CamOn, 6, 12)
            .unwrap();
    let cam_at_10 = cam.y_near(10.0).expect("populated 10ms bin");
    let cam_best = cam.first_y().unwrap();
    let drop_at_10 = cam_best - cam_at_10;
    assert!(
        drop_at_10 > 12.0,
        "Cam On at 10ms jitter dropped {drop_at_10}% (paper: >15%)"
    );
    let mic =
        correlate::engagement_curve(ds, NetworkMetric::JitterMs, EngagementMetric::MicOn, 6, 12)
            .unwrap();
    let mic_drop = drop_pct(&mic);
    assert!(
        drop_pct(&cam) > mic_drop,
        "Cam On must be the most jitter-sensitive"
    );
}

/// F1d — Fig. 1 (right): ≥ 1 Mbps is enough; Mic On is bandwidth-blind.
#[test]
fn fig1_bandwidth_panel() {
    let ds = dataset();
    for metric in EngagementMetric::ALL {
        let c =
            correlate::engagement_curve(ds, NetworkMetric::BandwidthMbps, metric, 6, 12).unwrap();
        let best = c
            .points()
            .iter()
            .map(|(_, y)| *y)
            .fold(f64::NEG_INFINITY, f64::max);
        let at_1mbps = c.y_near(1.1).expect("populated ~1Mbps bin");
        assert!(
            best - at_1mbps < 8.0,
            "{}: {at_1mbps} at 1 Mbps vs best {best} (paper: within 5%)",
            metric.label()
        );
    }
    // Mic On flat across the whole bandwidth span.
    let mic = correlate::engagement_curve(
        ds,
        NetworkMetric::BandwidthMbps,
        EngagementMetric::MicOn,
        6,
        12,
    )
    .unwrap();
    let pts = mic.points();
    let min = pts.iter().map(|(_, y)| *y).fold(f64::INFINITY, f64::min);
    assert!(
        min > 93.0,
        "Mic On should not correlate with bandwidth: min {min}"
    );
}

/// F2 — Fig. 2: latency × loss compound; worst combination dips toward 50 %.
#[test]
fn fig2_compounding() {
    let grid = correlate::compounding_grid(dataset(), EngagementMetric::Presence, 4, 8).unwrap();
    let min = grid.min_value().expect("populated grid");
    assert!(min < 72.0, "worst-cell presence {min} (paper: dips ~50%)");
    // The clean corner is the best cell…
    let clean = grid.value_at(30.0, 0.2).expect("clean cell populated");
    assert!(clean > 97.0, "clean-corner presence {clean}");
    // …and presence decreases along *each* axis from it (both dimensions
    // independently contribute; their combination is where the minimum
    // lives — the far corner itself can be too thin to aggregate).
    if let Some(high_lat) = grid.value_at(280.0, 0.2) {
        assert!(
            high_lat < clean - 5.0,
            "latency axis: {high_lat} vs {clean}"
        );
    }
    if let Some(high_loss) = grid.value_at(30.0, 2.8) {
        assert!(high_loss < clean - 5.0, "loss axis: {high_loss} vs {clean}");
    }
}

/// F3 — Fig. 3: mobile users drop off sooner; OSes differ.
#[test]
fn fig3_platform_sensitivity() {
    use conference::platform::Platform;
    let ds = dataset();
    let curves = correlate::platform_curves(
        ds,
        NetworkMetric::LossPct,
        EngagementMetric::Presence,
        3,
        10,
    )
    .unwrap();
    let last_y = |p: Platform| {
        curves
            .iter()
            .find(|(q, _)| *q == p)
            .and_then(|(_, c)| c.last_y())
            .unwrap_or(f64::NAN)
    };
    let windows = last_y(Platform::WindowsPc);
    let android = last_y(Platform::AndroidMobile);
    let ios = last_y(Platform::IosMobile);
    assert!(
        android < windows,
        "Android presence {android} should trail Windows {windows} under loss"
    );
    assert!(
        ios < windows,
        "iOS presence {ios} should trail Windows {windows} under loss"
    );
}

/// §3.2 text — beyond 3 % loss, the chance of dropping off rises sharply.
#[test]
fn loss_above_three_percent_drives_abandonment() {
    let c = correlate::dropoff_by_loss(dataset(), 5, 10).unwrap();
    let low = c.y_near(0.5).expect("low-loss bin");
    let high = c.y_near(4.5).expect("high-loss bin");
    assert!(
        high > low + 10.0,
        "drop-off rate {high}% at >3% loss vs {low}% baseline (paper: +10 points)"
    );
}

/// §3.2 text — causality check: latency does not increase with Cam On.
#[test]
fn cam_on_does_not_congest_the_network() {
    let c = correlate::latency_by_cam_on(dataset(), 5, 30).unwrap();
    let slope = c.slope_between(10.0, 90.0).unwrap();
    assert!(
        slope <= 0.05,
        "latency-vs-CamOn slope {slope} should not be positive"
    );
}

/// F4 — Fig. 4: engagement correlates with MOS; Presence strongest.
#[test]
fn fig4_mos_correlation() {
    let ds = dataset();
    for metric in EngagementMetric::ALL {
        let c = correlate::mos_by_engagement(ds, metric, 4, 5).unwrap();
        let pts = c.points();
        assert!(pts.len() >= 2, "{}: too few MOS bins", metric.label());
        assert!(
            pts.last().unwrap().1 > pts.first().unwrap().1,
            "{}: MOS must rise with engagement: {pts:?}",
            metric.label()
        );
    }
    let ranking = correlate::mos_correlations(ds).unwrap();
    assert_eq!(
        ranking[0].0,
        EngagementMetric::Presence,
        "Presence shows the strongest correlation with MOS (paper §3.3): {ranking:?}"
    );
}

/// S4 — §6: network effect dominates platform, meeting size, conditioning.
#[test]
fn confounder_effect_ordering() {
    let report = correlate::confounder_report(dataset()).unwrap();
    assert!(
        report.network_effect > report.meeting_size_effect,
        "network {:.1} vs meeting size {:.1}",
        report.network_effect,
        report.meeting_size_effect
    );
    assert!(
        report.network_effect > report.conditioning_effect,
        "network {:.1} vs conditioning {:.1}",
        report.network_effect,
        report.conditioning_effect
    );
    assert!(
        report.platform_effect > 0.5,
        "platforms must differ: {report:?}"
    );
}

/// §3.1 — the explicit-feedback sliver sits in the paper's 0.1–1 % band.
#[test]
fn feedback_sampling_rate_in_band() {
    let ds = dataset();
    let rate = ds.rated_sessions().count() as f64 / ds.len() as f64;
    assert!(
        (0.001..0.01).contains(&rate),
        "feedback rate {rate} outside the paper's 0.1–1% band"
    );
}
