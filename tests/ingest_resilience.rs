//! Resilient-ingestion contract suite.
//!
//! Three promises are pinned here, all on a virtual clock (no test in this
//! file ever sleeps wall time):
//!
//! 1. **Fault-matrix determinism** — a seeded [`FaultPlan`] (drops, a
//!    burst-fail window, transient flakiness, corruption, one poison pill)
//!    produces bit-identical stored totals and identical quarantine sets
//!    whether the worker pool has 1, 4, or 8 threads, because every fault
//!    decision is pure in `hash(seed, item index)` and quarantine identity
//!    is assigned by the single-threaded producer. The seed set is
//!    extensible via the `INGEST_FAULT_SEEDS` env knob (comma-separated
//!    u64s), which CI uses to sweep extra seeds.
//! 2. **Breaker lifecycle** — closed → open → half-open → closed, driven
//!    end to end through the ingestion engine with cooldowns elapsing on
//!    the virtual clock; and graceful degradation: a service whose source
//!    ends a run with its breaker open still answers queries, annotated as
//!    stale.
//! 3. **Append-while-serving** — committed appends bump the epoch and
//!    invalidate the per-generation answer cache, while a pinned snapshot
//!    keeps serving the pre-append world.

use std::sync::Arc;

use conference::dataset::{generate, DatasetConfig};
use conference::records::{EngagementMetric, NetworkMetric};
use social::generator::{generate as gen_forum, ForumConfig};
use usaas::{
    ingest_stream, Answer, BreakerConfig, BreakerState, Clock, FaultInjector, FaultPlan,
    IngestConfig, IngestReport, ItemSource, QuarantineReason, Query, RawItem, SignalStore,
    UsaasService, VirtualClock,
};

/// Session items from the deterministic dataset generator.
fn session_items(n: usize, seed: u64) -> Vec<RawItem> {
    let dataset = generate(&DatasetConfig::small(n.max(8), seed));
    dataset
        .sessions
        .into_iter()
        .take(n)
        .map(|s| RawItem::Session(Box::new(s)))
        .collect()
}

/// Post items from the deterministic forum generator.
fn post_items(n: usize) -> Vec<RawItem> {
    let forum = gen_forum(&ForumConfig {
        authors: 400,
        ..ForumConfig::default()
    });
    forum
        .posts
        .into_iter()
        .take(n)
        .map(|p| RawItem::Post(Box::new(p)))
        .collect()
}

/// Seeds for the fault matrix: `INGEST_FAULT_SEEDS=1,2,3` overrides the
/// default single seed (CI sweeps three).
fn fault_seeds() -> Vec<u64> {
    std::env::var("INGEST_FAULT_SEEDS")
        .ok()
        .map(|raw| {
            raw.split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|seeds| !seeds.is_empty())
        .unwrap_or_else(|| vec![7])
}

/// One full faulty run: two sources behind seeded injectors — sessions
/// with drops + transient flakiness + a burst-fail window + one poison
/// pill, posts with drops + corruption.
fn faulty_run(seed: u64, workers: usize) -> (IngestReport, usize) {
    let store = SignalStore::new();
    let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
    let session_plan = FaultPlan::seeded(seed)
        .with_drops(0.03)
        .with_transient(0.05, 1)
        .with_burst(40..46)
        .with_poison(10);
    let post_plan = FaultPlan::seeded(seed ^ 0x9E37_79B9)
        .with_drops(0.02)
        .with_corruption(0.03);
    let sessions = FaultInjector::new(
        ItemSource::new("conference-telemetry", session_items(120, seed)),
        session_plan,
        Arc::clone(&clock),
    );
    let posts = FaultInjector::new(
        ItemSource::new("forum-crawl", post_items(200)),
        post_plan,
        Arc::clone(&clock),
    );
    let cfg = IngestConfig {
        workers,
        clock,
        ..IngestConfig::default()
    };
    let report = ingest_stream(&store, vec![Box::new(sessions), Box::new(posts)], &cfg);
    (report, store.len())
}

#[test]
fn fault_matrix_is_worker_invariant() {
    for seed in fault_seeds() {
        let (baseline, baseline_stored) = faulty_run(seed, 1);
        // The plan must actually exercise every failure path, or the
        // invariance claim is vacuous.
        assert!(baseline.fed > 0, "seed {seed}: nothing ingested");
        assert!(baseline.retries > 0, "seed {seed}: no transient retries");
        assert!(
            baseline
                .quarantined
                .iter()
                .any(|q| q.reason == QuarantineReason::RetriesExhausted),
            "seed {seed}: burst window produced no dead letters"
        );
        assert!(
            baseline
                .quarantined
                .iter()
                .any(|q| q.reason == QuarantineReason::PermanentError),
            "seed {seed}: corruption produced no dead letters"
        );
        assert!(
            baseline
                .quarantined
                .iter()
                .any(|q| q.reason == QuarantineReason::PoisonPill),
            "seed {seed}: the poison pill was not quarantined"
        );
        assert!(
            baseline.sources.iter().any(|s| s.dropped > 0),
            "seed {seed}: no silent drops"
        );
        assert_eq!(baseline.stored, baseline_stored);

        for workers in [4usize, 8] {
            let (report, stored) = faulty_run(seed, workers);
            assert_eq!(
                report.stored, baseline.stored,
                "seed {seed}: stored totals diverge at {workers} workers"
            );
            assert_eq!(stored, baseline_stored);
            assert_eq!(report.fed, baseline.fed, "seed {seed}");
            assert_eq!(report.retries, baseline.retries, "seed {seed}");
            assert_eq!(report.breaker_trips, baseline.breaker_trips, "seed {seed}");
            assert_eq!(
                report.quarantined, baseline.quarantined,
                "seed {seed}: quarantine set diverges at {workers} workers"
            );
            for (a, b) in report.sources.iter().zip(&baseline.sources) {
                assert_eq!(a.fed, b.fed, "seed {seed} source {}", a.name);
                assert_eq!(a.dropped, b.dropped, "seed {seed} source {}", a.name);
                assert_eq!(
                    a.quarantined, b.quarantined,
                    "seed {seed} source {}",
                    a.name
                );
            }
        }
    }
}

#[test]
fn poison_pill_survives_and_identifies_itself() {
    let store = SignalStore::new();
    let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
    let src = FaultInjector::new(
        ItemSource::new("poisoned", session_items(20, 5)),
        FaultPlan::seeded(5).with_poison(7),
        Arc::clone(&clock),
    );
    let cfg = IngestConfig {
        workers: 4,
        clock,
        ..IngestConfig::default()
    };
    let report = ingest_stream(&store, vec![Box::new(src)], &cfg);
    assert_eq!(report.fed, 20, "the pill is fed, then quarantined in-pool");
    assert_eq!(report.quarantined.len(), 1);
    let q = &report.quarantined[0];
    assert_eq!(q.reason, QuarantineReason::PoisonPill);
    assert_eq!((q.source_id, q.seq), (0, 7));
    assert!(
        q.detail.contains("poison pill"),
        "panic payload is recorded: {}",
        q.detail
    );
    assert!(report.is_degraded());
    assert_eq!(report.quarantined_keys(), vec![(0, 7)]);
}

#[test]
fn breaker_full_cycle_closed_open_half_open_closed() {
    let store = SignalStore::new();
    let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
    // Every item fails twice then succeeds; threshold 2 trips the breaker
    // on each item's second failure, the cooldown elapses on the virtual
    // clock, and the half-open probe (the item's third attempt) succeeds
    // and re-closes it.
    let src = FaultInjector::new(
        ItemSource::new("flaky", session_items(4, 3)),
        FaultPlan::seeded(3).with_transient(1.0, 2),
        Arc::clone(&clock),
    );
    let cfg = IngestConfig {
        workers: 2,
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_ms: 500,
            half_open_successes: 1,
        },
        clock: Arc::clone(&clock),
        ..IngestConfig::default()
    };
    let report = ingest_stream(&store, vec![Box::new(src)], &cfg);
    assert_eq!(report.fed, 4, "every item recovers through the probe");
    assert_eq!(report.breaker_trips, 4, "one trip per item");
    assert_eq!(report.sources[0].breaker_state, BreakerState::Closed);
    assert!(report.quarantined.is_empty());
    assert!(!report.is_degraded(), "a fully recovered run is healthy");
    assert!(
        clock.now_ms() >= 4 * 500,
        "cooldowns elapsed on the virtual clock (now = {}ms)",
        clock.now_ms()
    );
}

#[test]
fn disconnect_mid_stream_is_reported_not_fatal() {
    let store = SignalStore::new();
    let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
    let src = FaultInjector::new(
        ItemSource::new("cut-feed", session_items(30, 11)),
        FaultPlan::seeded(11).with_disconnect(12),
        Arc::clone(&clock),
    );
    let cfg = IngestConfig {
        workers: 3,
        clock,
        ..IngestConfig::default()
    };
    let report = ingest_stream(&store, vec![Box::new(src)], &cfg);
    assert_eq!(report.fed, 12, "items before the cut are ingested");
    let health = &report.sources[0];
    assert!(health.disconnected);
    assert_eq!(health.skipped, 18, "the tail is accounted for");
    assert!(report.is_degraded());
}

#[test]
fn open_breaker_degrades_service_but_keeps_serving() {
    let dataset = generate(&DatasetConfig::small(300, 21));
    let forum = gen_forum(&ForumConfig {
        authors: 600,
        ..ForumConfig::default()
    });
    let svc = UsaasService::build(dataset, forum, 4);
    assert!(!svc.health().is_degraded(), "build-time ingest is trusted");

    // An appended source whose tail is a hard-down burst: the breaker ends
    // the run tripped, the burst items dead-letter.
    let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
    let n = 24;
    let src = FaultInjector::new(
        ItemSource::new("flaky-feed", session_items(n, 9)),
        FaultPlan::seeded(9).with_burst(16..n),
        Arc::clone(&clock),
    );
    let cfg = IngestConfig {
        workers: 4,
        breaker: BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 250,
            half_open_successes: 1,
        },
        clock,
        ..IngestConfig::default()
    };
    let report = svc.ingest_append(vec![Box::new(src)], &cfg);
    assert_eq!(report.fed, 16, "items before the burst are committed");
    assert_eq!(report.quarantined.len(), n - 16);
    assert!(report.breaker_trips > 0);
    assert!(!report.open_breakers().is_empty(), "the run ends tripped");

    // The degraded-serving contract: queries still answer, annotated.
    let q = Query::EngagementCurve {
        sweep: NetworkMetric::LatencyMs,
        engagement: EngagementMetric::Presence,
        bins: 6,
    };
    let (answer, health) = svc.query_with_health(&q);
    assert!(matches!(answer, Ok(Answer::Curve(_))));
    assert!(health.is_stale(), "open breaker ⇒ possibly stale answers");
    assert!(health.is_degraded());
    assert_eq!(health.open_breakers, vec!["flaky-feed".to_string()]);
    assert_eq!(health.quarantined_total, n - 16);
    assert_eq!(health.epoch, 1, "the pre-burst items still committed");

    // A later healthy run clears the staleness annotation (totals remain).
    let report = svc.append_batch(generate(&DatasetConfig::small(16, 31)).sessions, Vec::new());
    assert!(!report.is_degraded());
    let health = svc.health();
    assert!(!health.is_stale(), "a healthy run closes the annotation");
    assert!(health.is_degraded(), "quarantine totals are remembered");
    assert_eq!(health.quarantined_total, n - 16);
}

#[test]
fn append_invalidates_cache_by_epoch_and_snapshots_keep_serving() {
    let dataset = generate(&DatasetConfig::small(250, 41));
    let forum = gen_forum(&ForumConfig {
        authors: 500,
        ..ForumConfig::default()
    });
    let svc = UsaasService::build(dataset, forum, 4);
    let q = Query::EngagementCurve {
        sweep: NetworkMetric::LatencyMs,
        engagement: EngagementMetric::Presence,
        bins: 8,
    };

    let before = svc.query(&q).unwrap();
    let _ = svc.query(&q).unwrap();
    assert_eq!(svc.cache_misses(), 1);
    assert_eq!(svc.cache_hits(), 1, "epoch-0 cache serves the repeat");

    // Pin the pre-append world.
    let pinned = svc.snapshot();
    let pinned_sessions = pinned.sessions().len();

    let delta = generate(&DatasetConfig::small(120, 43));
    let added = delta.len();
    let report = svc.append_batch(delta.sessions, Vec::new());
    assert_eq!(report.fed, added);
    assert!(!report.is_degraded());

    // The epoch bumped and the fresh generation recomputes from scratch.
    assert_eq!(svc.epoch(), 1);
    assert_eq!(svc.cache_misses(), 0, "the new epoch starts cold");
    let after = svc.query(&q).unwrap();
    assert_ne!(
        format!("{before:?}"),
        format!("{after:?}"),
        "the appended sessions must change the answer"
    );
    assert_eq!(svc.cache_misses(), 1, "recomputed once against new data");

    // The pinned snapshot still serves the old epoch, bit-for-bit.
    assert_eq!(pinned.epoch(), 0);
    assert_eq!(pinned.sessions().len(), pinned_sessions);
    let replay = pinned.query(&q).unwrap();
    assert_eq!(
        format!("{before:?}"),
        format!("{replay:?}"),
        "a pinned snapshot is immutable"
    );

    // New signals reached the shared store while the snapshot served.
    let snap = svc.snapshot();
    assert_eq!(snap.sessions().len(), pinned_sessions + added);
    assert_eq!(snap.frame().len(), pinned_sessions + added);
}
