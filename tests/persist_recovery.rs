//! Kill-point recovery matrix: crash the persisted service at every
//! journal boundary (plus torn-tail and corrupt-snapshot variants) and
//! assert the recovered service is **bit-identical** — same epoch, same
//! signal counts, same dead-letters, and byte-for-byte the same answer to
//! every query — to a service that lived through the same appends without
//! crashing. Run for recovery worker counts 1 and 4.

use analytics::time::Date;
use conference::dataset::{generate, DatasetConfig};
use conference::records::{CallDataset, EngagementMetric, NetworkMetric, SessionRecord};
use netsim::access::AccessType;
use social::generator::{generate as gen_forum, ForumConfig};
use social::post::{Forum, Post};
use std::fs;
use std::path::{Path, PathBuf};
use usaas::{
    journal_record_offsets, IngestConfig, ItemSource, Query, RawItem, Source, UsaasService,
    JOURNAL_FILE,
};

/// Fresh scratch directory under the system temp dir, emptied first.
fn tmp_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("usaas-recovery-{}-{test}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Copy every regular file of `src` into `dst` (the persist layout is
/// flat, so one level is enough).
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
    }
}

fn flip_byte(path: &Path, offset: usize) {
    let mut bytes = fs::read(path).unwrap();
    bytes[offset] ^= 0x40;
    fs::write(path, bytes).unwrap();
}

/// The journal sequence a persisted file covers: `snapshot-<seq>.snap`
/// or `diff-<base>-<seq>.snap`.
fn persisted_seq(name: &str) -> Option<u64> {
    let mid = name.strip_suffix(".snap")?;
    if let Some(seq) = mid.strip_prefix("snapshot-") {
        return seq.parse().ok();
    }
    let (_base, seq) = mid.strip_prefix("diff-")?.split_once('-')?;
    seq.parse().ok()
}

/// Remove snapshots (full or differential) that would not have existed
/// at a crash after journal record `k` (every file covering a later
/// sequence).
fn drop_snapshots_after(dir: &Path, k: u64) {
    for entry in fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = persisted_seq(name) {
            if seq > k {
                fs::remove_file(entry.path()).unwrap();
            }
        }
    }
}

/// The deterministic workload shared by the persisted run and every
/// reference run.
struct Fixture {
    dataset: CallDataset,
    forum: Forum,
    op1_sessions: Vec<SessionRecord>,
    op2_posts: Vec<Post>,
    op3_sessions: Vec<SessionRecord>,
    op3_posts: Vec<Post>,
}

impl Fixture {
    fn new() -> Fixture {
        let dataset = generate(&DatasetConfig::small(120, 33));
        let forum = gen_forum(&ForumConfig {
            authors: 250,
            end: Date::from_ymd(2021, 6, 30).unwrap(),
            ..ForumConfig::default()
        });
        let extra_posts = gen_forum(&ForumConfig {
            seed: 9,
            authors: 80,
            end: Date::from_ymd(2021, 3, 31).unwrap(),
            ..ForumConfig::default()
        })
        .posts;
        Fixture {
            dataset,
            forum,
            op1_sessions: generate(&DatasetConfig::small(40, 77)).sessions,
            op2_posts: extra_posts[..20.min(extra_posts.len())].to_vec(),
            op3_sessions: generate(&DatasetConfig::small(25, 5)).sessions,
            op3_posts: extra_posts[20..40.min(extra_posts.len())].to_vec(),
        }
    }

    /// Apply append op `i` (1-based) to a service. Op 2 mixes accepted
    /// posts with poison pills, so it journals dead-letters alongside the
    /// commit; single ingest worker keeps the quarantine order
    /// deterministic across runs.
    fn apply(&self, svc: &UsaasService, op: usize) {
        match op {
            1 => {
                svc.append_batch(self.op1_sessions.clone(), Vec::new());
            }
            2 => {
                let mut items: Vec<RawItem> = vec![RawItem::Poison("bad upstream frame")];
                items.extend(
                    self.op2_posts
                        .iter()
                        .map(|p| RawItem::Post(Box::new(p.clone()))),
                );
                items.push(RawItem::Poison("double-freed buffer"));
                let sources: Vec<Box<dyn Source>> =
                    vec![Box::new(ItemSource::new("flaky-feed", items))];
                svc.ingest_append(sources, &IngestConfig::with_workers(1));
            }
            3 => {
                svc.append_batch(self.op3_sessions.clone(), self.op3_posts.clone());
            }
            _ => panic!("unknown op {op}"),
        }
    }

    /// An in-memory reference service that lived through the first `k`
    /// appends without ever crashing.
    fn reference(&self, k: usize, workers: usize) -> UsaasService {
        let svc = UsaasService::build(self.dataset.clone(), self.forum.clone(), workers);
        for op in 1..=k {
            self.apply(&svc, op);
        }
        svc
    }
}

fn queries() -> Vec<Query> {
    vec![
        Query::EngagementCurve {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::Presence,
            bins: 5,
        },
        Query::MosCorrelation,
        Query::OutageTimeline,
        Query::SentimentPeaks { k: 2 },
        Query::SpeedTrend,
        Query::CrossNetwork {
            access: AccessType::SatelliteLeo,
        },
    ]
}

/// Everything the recovery invariant promises, rendered to comparable
/// strings: epoch, store counts, durable health (minus the recovery
/// warnings, which legitimately differ), dead-letters, and the
/// debug-formatted answer to every query.
fn fingerprint(svc: &UsaasService) -> Vec<String> {
    let health = svc.health();
    let mut out = vec![
        format!("epoch={}", svc.epoch()),
        format!("signals={:?}", svc.signal_counts()),
        format!(
            "health q={} u={} t={} open={:?}",
            health.quarantined_total,
            health.unfed_total,
            health.breaker_trips_total,
            health.open_breakers
        ),
        format!("dead_letters={:?}", svc.dead_letters()),
    ];
    for q in queries() {
        out.push(format!("{q:?} => {:?}", svc.query(&q)));
    }
    out
}

/// Run the full persisted workload in `dir`; returns the service. The
/// checkpoint lands between ops 2 and 3, with the social corpus already
/// built so the snapshot carries it. Forced full so this family pins the
/// full-snapshot recovery path; `run_workload_diff` covers the
/// differential one.
fn run_workload(fx: &Fixture, dir: &Path) -> UsaasService {
    let svc = UsaasService::build_persistent(fx.dataset.clone(), fx.forum.clone(), 2, dir).unwrap();
    fx.apply(&svc, 1);
    fx.apply(&svc, 2);
    let _ = svc.query(&Query::SpeedTrend);
    svc.checkpoint_full().unwrap();
    fx.apply(&svc, 3);
    svc
}

#[test]
fn kill_point_matrix_recovers_bit_identically() {
    let fx = Fixture::new();
    let dir = tmp_dir("matrix");
    let live = run_workload(&fx, &dir);
    let live_print = fingerprint(&live);
    drop(live);

    let offsets = journal_record_offsets(&dir.join(JOURNAL_FILE)).unwrap();
    assert_eq!(offsets.len(), 4, "three journaled appends plus offset 0");

    for (k, &cut_at) in offsets.iter().enumerate() {
        for workers in [1usize, 4] {
            let crash = tmp_dir(&format!("matrix-k{k}-w{workers}"));
            copy_dir(&dir, &crash);
            // Crash state: journal cut at the k-th commit boundary, and
            // any snapshot taken after that boundary never existed.
            let journal = crash.join(JOURNAL_FILE);
            fs::OpenOptions::new()
                .write(true)
                .open(&journal)
                .unwrap()
                .set_len(cut_at)
                .unwrap();
            drop_snapshots_after(&crash, k as u64);

            let recovered = UsaasService::open_or_recover(&crash, workers).unwrap();
            let health = recovered.health();
            assert!(
                health.recovery_warnings.is_empty(),
                "clean boundary cut k={k} must not warn: {:?}",
                health.recovery_warnings
            );
            let reference = fx.reference(k, workers);
            assert_eq!(
                fingerprint(&recovered),
                fingerprint(&reference),
                "recovered at k={k} workers={workers} must match the never-crashed service"
            );
            let _ = fs::remove_dir_all(&crash);
        }
    }

    // The uncut directory recovers to the full state.
    let recovered = UsaasService::open_or_recover(&dir, 2).unwrap();
    assert_eq!(fingerprint(&recovered), live_print);
    assert!(
        !recovered.dead_letters().is_empty(),
        "poison pills survive the restart"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_recovers_to_the_previous_commit() {
    let fx = Fixture::new();
    let dir = tmp_dir("torn");
    drop(run_workload(&fx, &dir));
    let offsets = journal_record_offsets(&dir.join(JOURNAL_FILE)).unwrap();

    // Tear mid-way through record 3: the crash hit during the append.
    let cut = (offsets[2] + offsets[3]) / 2;
    fs::OpenOptions::new()
        .write(true)
        .open(dir.join(JOURNAL_FILE))
        .unwrap()
        .set_len(cut)
        .unwrap();

    let recovered = UsaasService::open_or_recover(&dir, 2).unwrap();
    let health = recovered.health();
    assert!(
        health
            .recovery_warnings
            .iter()
            .any(|w| w.contains("truncated")),
        "the torn tail must be reported: {:?}",
        health.recovery_warnings
    );
    assert!(health.is_degraded());
    // Warnings aside, the state is exactly the two-commit prefix.
    assert_eq!(fingerprint(&recovered), fingerprint(&fx.reference(2, 2)));
    // And the repair is durable: reopening is clean.
    drop(recovered);
    let reopened = UsaasService::open_or_recover(&dir, 2).unwrap();
    assert!(reopened.health().recovery_warnings.is_empty());
    assert_eq!(fingerprint(&reopened), fingerprint(&fx.reference(2, 2)));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_falls_back_and_replays_the_full_journal() {
    let fx = Fixture::new();
    let dir = tmp_dir("flip");
    drop(run_workload(&fx, &dir));

    // Flip a payload byte in the newest snapshot (seq 2): its checksum
    // fails, recovery falls back to the epoch-0 snapshot and replays the
    // whole journal — ending bit-identical to the never-crashed service.
    flip_byte(&dir.join("snapshot-2.snap"), 400);
    let recovered = UsaasService::open_or_recover(&dir, 2).unwrap();
    let health = recovered.health();
    assert!(
        health.recovery_warnings.iter().any(|w| w.contains("seq 2")),
        "the skipped snapshot must be reported: {:?}",
        health.recovery_warnings
    );
    assert_eq!(fingerprint(&recovered), fingerprint(&fx.reference(3, 2)));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn every_snapshot_corrupt_is_an_error_not_a_panic() {
    let fx = Fixture::new();
    let dir = tmp_dir("all-corrupt");
    drop(run_workload(&fx, &dir));
    flip_byte(&dir.join("snapshot-0.snap"), 100);
    flip_byte(&dir.join("snapshot-2.snap"), 100);
    let err = UsaasService::open_or_recover(&dir, 2);
    assert!(err.is_err(), "no loadable snapshot must be a typed error");
    let _ = fs::remove_dir_all(&dir);
}

/// The differential workload: a forced **full** checkpoint after op 1
/// seeds the diff base, the checkpoint after op 2 then lands as a
/// `diff-1-2.snap` carrying only the dirtied suffixes, and op 3 stays
/// journal-only. The corpus is built before the base so the diff's
/// corpus extension path is exercised too.
fn run_workload_diff(fx: &Fixture, dir: &Path) -> UsaasService {
    let svc = UsaasService::build_persistent(fx.dataset.clone(), fx.forum.clone(), 2, dir).unwrap();
    fx.apply(&svc, 1);
    let _ = svc.query(&Query::SpeedTrend);
    let full = svc.checkpoint_full().unwrap();
    assert!(
        full.file_name().unwrap().to_str().unwrap() == "snapshot-1.snap",
        "forced checkpoint must be a full snapshot: {full:?}"
    );
    fx.apply(&svc, 2);
    let diff = svc.checkpoint().unwrap();
    assert!(
        diff.file_name().unwrap().to_str().unwrap() == "diff-1-2.snap",
        "small dirty suffix must produce a differential snapshot: {diff:?}"
    );
    fx.apply(&svc, 3);
    svc
}

#[test]
fn differential_kill_point_matrix_recovers_bit_identically() {
    let fx = Fixture::new();
    let dir = tmp_dir("diff-matrix");
    let live = run_workload_diff(&fx, &dir);
    let live_print = fingerprint(&live);
    drop(live);

    let offsets = journal_record_offsets(&dir.join(JOURNAL_FILE)).unwrap();
    assert_eq!(offsets.len(), 4, "three journaled appends plus offset 0");

    for (k, &cut_at) in offsets.iter().enumerate() {
        for workers in [1usize, 4, 8] {
            let crash = tmp_dir(&format!("diff-matrix-k{k}-w{workers}"));
            copy_dir(&dir, &crash);
            let journal = crash.join(JOURNAL_FILE);
            fs::OpenOptions::new()
                .write(true)
                .open(&journal)
                .unwrap()
                .set_len(cut_at)
                .unwrap();
            drop_snapshots_after(&crash, k as u64);

            let recovered = UsaasService::open_or_recover(&crash, workers).unwrap();
            let health = recovered.health();
            assert!(
                health.recovery_warnings.is_empty(),
                "clean boundary cut k={k} must not warn: {:?}",
                health.recovery_warnings
            );
            let reference = fx.reference(k, workers);
            assert_eq!(
                fingerprint(&recovered),
                fingerprint(&reference),
                "diff-recovered at k={k} workers={workers} must match the never-crashed service"
            );
            let _ = fs::remove_dir_all(&crash);
        }
    }

    // The uncut directory recovers through the diff to the full state.
    let recovered = UsaasService::open_or_recover(&dir, 2).unwrap();
    assert_eq!(fingerprint(&recovered), live_print);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn differential_recovery_matches_full_recovery_exactly() {
    let fx = Fixture::new();
    let dir = tmp_dir("diff-vs-full");
    drop(run_workload_diff(&fx, &dir));

    // Recover once through the diff fast path, once with the diff file
    // removed (base + full journal replay). Both must land on the same
    // fingerprint — the diff is pure acceleration, never a state change.
    let via_diff = tmp_dir("diff-vs-full-d");
    let via_replay = tmp_dir("diff-vs-full-r");
    copy_dir(&dir, &via_diff);
    copy_dir(&dir, &via_replay);
    fs::remove_file(via_replay.join("diff-1-2.snap")).unwrap();

    let a = UsaasService::open_or_recover(&via_diff, 2).unwrap();
    let b = UsaasService::open_or_recover(&via_replay, 2).unwrap();
    assert!(a.health().recovery_warnings.is_empty());
    assert!(b.health().recovery_warnings.is_empty());
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(fingerprint(&a), fingerprint(&fx.reference(3, 2)));
    for d in [dir, via_diff, via_replay] {
        let _ = fs::remove_dir_all(&d);
    }
}

#[test]
fn corrupt_diff_falls_back_to_base_and_replays() {
    let fx = Fixture::new();
    let dir = tmp_dir("diff-flip");
    drop(run_workload_diff(&fx, &dir));

    // Flip a payload byte in the diff: its checksum fails, recovery
    // falls back to the seq-1 full snapshot and replays the journal
    // tail — ending bit-identical to the never-crashed service.
    flip_byte(&dir.join("diff-1-2.snap"), 60);
    let recovered = UsaasService::open_or_recover(&dir, 2).unwrap();
    let health = recovered.health();
    assert!(
        !health.recovery_warnings.is_empty(),
        "the skipped diff must be reported"
    );
    assert_eq!(fingerprint(&recovered), fingerprint(&fx.reference(3, 2)));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn build_persistent_refuses_an_existing_directory() {
    let fx = Fixture::new();
    let dir = tmp_dir("refuse");
    drop(UsaasService::build_persistent(fx.dataset.clone(), fx.forum.clone(), 2, &dir).unwrap());
    assert!(
        UsaasService::build_persistent(fx.dataset.clone(), fx.forum.clone(), 2, &dir).is_err(),
        "re-initialising over a persisted service must be refused"
    );
    // ... while open_or_recover of the same directory works.
    let reopened = UsaasService::open_or_recover(&dir, 2).unwrap();
    assert_eq!(reopened.epoch(), 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn dead_letter_ring_cap_survives_recovery_with_derived_drop_count() {
    use usaas::DEAD_LETTER_CAP;
    let dir = tmp_dir("dead-letter-cap");
    let mut base = generate(&DatasetConfig::small(40, 9));
    base.sessions.truncate(30);
    let svc = UsaasService::build_persistent(base, Forum { posts: Vec::new() }, 2, &dir).unwrap();
    // Quarantine more than the ring holds: the journal and snapshot carry
    // only the capped tail, but the exact total persists in the health
    // counters, so recovery derives the evicted count.
    let pills = DEAD_LETTER_CAP + 137;
    let items: Vec<RawItem> = (0..pills).map(|_| RawItem::Poison("pill")).collect();
    let report = svc.ingest_append(
        vec![Box::new(ItemSource::new("pill-feed", items))],
        &IngestConfig::with_workers(2),
    );
    assert_eq!(report.quarantined.len(), pills);
    let live = svc.health();
    assert_eq!(live.quarantined_total, pills);
    assert_eq!(live.dead_letters_dropped, pills - DEAD_LETTER_CAP);
    let live_ring = svc.dead_letters();
    drop(svc);

    let recovered = UsaasService::open_or_recover(&dir, 2).unwrap();
    let health = recovered.health();
    assert!(
        health.recovery_warnings.is_empty(),
        "{:?}",
        health.recovery_warnings
    );
    assert_eq!(health.quarantined_total, pills, "exact total survives");
    assert_eq!(
        recovered.dead_letters().len(),
        DEAD_LETTER_CAP,
        "the ring reloads capped"
    );
    assert_eq!(
        health.dead_letters_dropped,
        pills - DEAD_LETTER_CAP,
        "the evicted count is re-derived on recovery"
    );
    assert_eq!(
        format!("{:?}", recovered.dead_letters()),
        format!("{live_ring:?}"),
        "the retained tail is bit-identical"
    );
    let _ = fs::remove_dir_all(&dir);
}
