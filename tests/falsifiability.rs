//! Falsifiability / failure-injection checks.
//!
//! A reproduction that can only confirm is worthless: when the ground truth
//! is removed or the substrate is broken on purpose, the pipelines must
//! *stop* finding the paper's results. Each test here breaks one link and
//! asserts the corresponding detection disappears or degrades.

use analytics::time::Date;
use conference::dataset::{generate_with, DatasetConfig};
use conference::records::{EngagementMetric, NetworkMetric};
use conference::CallSimulator;
use netsim::mitigation::Mitigation;
use social::generator::{generate, ForumConfig};
use social::post::Forum;
use std::sync::OnceLock;
use usaas::annotate::PeakAnnotator;
use usaas::correlate;
use usaas::emerging::EmergingTopicMiner;
use usaas::outage::OutageDetector;

/// A corpus with the ground-truth event machinery switched off.
fn eventless_forum() -> &'static Forum {
    static F: OnceLock<Forum> = OnceLock::new();
    F.get_or_init(|| {
        generate(&ForumConfig {
            events_enabled: false,
            authors: 4000,
            ..ForumConfig::default()
        })
    })
}

#[test]
fn no_events_no_outage_detections() {
    let detections = OutageDetector::default().detect(eventless_forum()).unwrap();
    // Baseline chatter has occasional keyword mentions but no coordinated
    // spikes; the detector must stay (almost) silent, and whatever noise
    // peaks survive must be far weaker than real outage spikes (majors score
    // z in the tens on the real corpus).
    assert!(
        detections.len() <= 5,
        "detector hallucinated {} outages on an event-free corpus",
        detections.len()
    );
    let max_score = detections.iter().map(|d| d.score).fold(0.0, f64::max);
    assert!(
        max_score < 15.0,
        "noise peak scored {max_score} — major-outage scale"
    );
    for known in [
        Date::from_ymd(2022, 1, 7).unwrap(),
        Date::from_ymd(2022, 4, 22).unwrap(),
        Date::from_ymd(2022, 8, 30).unwrap(),
    ] {
        assert!(
            detections
                .iter()
                .all(|d| (d.date.days_since(known)).abs() > 1),
            "detector found the {known} outage in a corpus that does not contain it"
        );
    }
}

#[test]
fn no_events_no_paper_peaks() {
    let peaks = PeakAnnotator::default()
        .annotate(eventless_forum(), 3)
        .unwrap();
    for p in &peaks {
        for known in ["2021-02-09", "2021-11-24", "2022-04-22"] {
            assert_ne!(
                p.date.to_string(),
                known,
                "peak annotator found a paper event in an event-free corpus"
            );
        }
    }
}

#[test]
fn no_events_no_roaming_detection() {
    let hit = EmergingTopicMiner::default()
        .first_detection(eventless_forum(), "roaming")
        .unwrap();
    assert!(
        hit.is_none(),
        "roaming flagged without the discovery event: {hit:?}"
    );
}

#[test]
fn disabling_mitigation_breaks_the_flat_loss_curve() {
    // The paper attributes Fig. 1b's flatness to app-layer safeguards. With
    // mitigation disabled, the same loss sweep must hurt engagement several
    // times harder — the mechanism, not a coincidence, carries the result.
    let with = CallSimulator::default();
    let without = CallSimulator {
        mitigation: Mitigation::disabled(),
        ..CallSimulator::default()
    };
    let cfg = DatasetConfig {
        calls: 6000,
        seed: 0xAB1C,
        ..DatasetConfig::default()
    };
    let ds_with = generate_with(&cfg, &with);
    let ds_without = generate_with(&cfg, &without);
    let drop = |ds: &conference::records::CallDataset| {
        let c =
            correlate::engagement_curve(ds, NetworkMetric::LossPct, EngagementMetric::CamOn, 5, 8)
                .unwrap();
        c.first_y().unwrap() - c.last_y().unwrap()
    };
    let drop_with = drop(&ds_with);
    let drop_without = drop(&ds_without);
    assert!(
        drop_without > drop_with * 1.5,
        "mitigation ablation: drop {drop_with} with vs {drop_without} without"
    );
    // (The strict <10-point check runs at full scale in figure_shapes; this
    // smaller ablation dataset gets a little slack.)
    assert!(
        drop_with < 12.0,
        "with mitigation the loss panel must stay flat: {drop_with}"
    );
}

#[test]
fn conditioning_ablation_flattens_sensitivity_gap() {
    // §6: long-term conditioning attenuates reactions. Verified indirectly
    // at the dataset level: conditioned users retain more presence under
    // degraded conditions than unconditioned ones.
    let cfg = DatasetConfig {
        calls: 8000,
        seed: 0xC0ED,
        ..DatasetConfig::default()
    };
    let ds = generate_with(&cfg, &CallSimulator::default());
    let presence = |conditioned: bool| {
        let xs: Vec<f64> = ds
            .sessions
            .iter()
            .filter(|s| s.conditioned == conditioned)
            .filter(|s| s.network_mean(NetworkMetric::LatencyMs) > 150.0)
            .map(|s| s.presence_pct)
            .collect();
        analytics::mean(&xs).unwrap()
    };
    let gap = presence(true) - presence(false);
    assert!(gap > 0.5, "conditioned users should endure more: gap {gap}");
}

#[test]
fn garbage_text_does_not_crash_nlp_pipelines() {
    use sentiment::analyzer::SentimentAnalyzer;
    use sentiment::keywords::KeywordDictionary;
    use sentiment::wordcloud::WordCloud;
    let garbage = [
        "",
        "\u{0}\u{1}\u{2}",
        "🛰🛰🛰🛰🛰",
        &"a".repeat(100_000),
        "......!!!???,,,",
        "ÆØÅ 北京 рыба مرحبا",
    ];
    let analyzer = SentimentAnalyzer::default();
    let dict = KeywordDictionary::outages();
    for g in garbage {
        let s = analyzer.score(g);
        assert!((s.positive + s.negative + s.neutral - 1.0).abs() < 1e-9);
        let _ = dict.count_matches(g);
    }
    let cloud = WordCloud::from_documents(garbage.iter().copied(), 10);
    assert!(cloud.words.len() <= 10);
}

#[test]
fn ocr_extractor_rejects_adversarial_numbers() {
    // Numbers embedded in prose (dates, prices) must not be read as speeds.
    let e = ocr::extract::extract(
        "ordered on 2022-03-15 for 599 dollars, dish number 48813, awaiting setup",
    );
    assert!(
        !e.has_downlink(),
        "prose numbers misread as a speed test: {e:?}"
    );
    // A latency label with an absurd value cannot produce an absurd output.
    let e2 = ocr::extract::extract("PING ms\n999999999\n");
    if let Some(l) = e2.latency_ms {
        assert!((5.0..=900.0).contains(&l));
    }
}
