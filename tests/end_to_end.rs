//! End-to-end service tests: ingestion, every query, the cross-network
//! corroboration join, and whole-pipeline determinism.

use analytics::time::Date;
use conference::dataset::{generate, DatasetConfig};
use netsim::access::AccessType;
use social::generator::{generate as gen_forum, ForumConfig};
use std::sync::OnceLock;
use usaas::service::{Answer, Query, UsaasService};

fn service() -> &'static UsaasService {
    static S: OnceLock<UsaasService> = OnceLock::new();
    S.get_or_init(|| {
        let mut cfg = DatasetConfig::small(4000, 0xE2E1);
        cfg.leo_outage_calendar = starlink::outages::major_outages()
            .into_iter()
            .map(|o| (o.date, o.severity))
            .collect();
        let dataset = generate(&cfg);
        let forum = gen_forum(&ForumConfig::default());
        UsaasService::build(dataset, forum, 4)
    })
}

#[test]
fn signal_families_all_ingested() {
    let (implicit, explicit, social) = service().signal_counts();
    assert!(implicit > 10_000, "implicit {implicit}");
    assert!(explicit > 20, "explicit {explicit}");
    assert!(social > 20_000, "social {social}");
    // The sampling-scarcity motivation.
    assert!(implicit > 50 * explicit);
}

#[test]
fn every_query_kind_answers() {
    use conference::records::{EngagementMetric, NetworkMetric};
    let s = service();
    let queries: Vec<Query> = vec![
        Query::EngagementCurve {
            sweep: NetworkMetric::JitterMs,
            engagement: EngagementMetric::CamOn,
            bins: 6,
        },
        Query::CompoundingGrid {
            engagement: EngagementMetric::Presence,
            bins: 4,
        },
        Query::PlatformSensitivity {
            sweep: NetworkMetric::LossPct,
            engagement: EngagementMetric::Presence,
        },
        Query::MosCorrelation,
        Query::PredictMos {
            features: usaas::predict::FeatureSet::Full,
        },
        Query::OutageTimeline,
        Query::SentimentPeaks { k: 3 },
        Query::SpeedTrend,
        Query::EmergingTopics,
        Query::CrossNetwork {
            access: AccessType::SatelliteLeo,
        },
        Query::DeploymentAdvice,
    ];
    for q in &queries {
        assert!(s.query(q).is_ok(), "query failed: {q:?}");
    }
}

#[test]
fn batch_execution_matches_sequential_answers() {
    use conference::records::{EngagementMetric, NetworkMetric};
    let s = service();
    let queries: Vec<Query> = vec![
        Query::EngagementCurve {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::MicOn,
            bins: 6,
        },
        Query::MosCorrelation,
        Query::OutageTimeline,
        Query::SpeedTrend,
        Query::CrossNetwork {
            access: AccessType::SatelliteLeo,
        },
    ];
    let batch = s.query_batch(&queries);
    assert_eq!(batch.len(), queries.len());
    for (q, parallel) in queries.iter().zip(&batch) {
        let sequential = s.query(q);
        assert_eq!(
            format!("{parallel:?}"),
            format!("{sequential:?}"),
            "batch answer diverged for {q:?}"
        );
    }
}

#[test]
fn cross_network_outage_corroboration() {
    let s = service();
    let Answer::CrossNetwork(report) = s
        .query(&Query::CrossNetwork {
            access: AccessType::SatelliteLeo,
        })
        .unwrap()
    else {
        panic!("wrong answer kind");
    };
    assert!(report.sessions > 100);
    // Satellite users fare a bit worse than the population overall…
    assert!(report.mean_presence < report.others_presence + 1.0);
    // …and collapse on socially-detected major-outage days.
    let outage_presence = report.outage_day_presence.expect("outage days joined");
    assert!(
        outage_presence < report.mean_presence - 5.0,
        "outage-day presence {outage_presence} vs {}",
        report.mean_presence
    );
    assert!(report.outage_days_joined >= 1);
}

#[test]
fn deployment_advice_reflects_complaint_geography() {
    let s = service();
    let Answer::Deployment(recs) = s.query(&Query::DeploymentAdvice).unwrap() else {
        panic!("wrong answer kind");
    };
    assert_eq!(recs.len(), 5);
    assert!(recs.windows(2).all(|w| w[0].score >= w[1].score));
    assert!(
        recs[0].remaining > 0,
        "top recommendation must be actionable"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    // Same configs → byte-identical corpora and datasets.
    let cfg = DatasetConfig::small(150, 77);
    let a = generate(&cfg);
    let b = generate(&cfg);
    assert_eq!(a.sessions, b.sessions);

    let fcfg = ForumConfig {
        end: Date::from_ymd(2021, 3, 31).unwrap(),
        authors: 1000,
        ..ForumConfig::default()
    };
    let fa = gen_forum(&fcfg);
    let fb = gen_forum(&fcfg);
    assert_eq!(fa.posts, fb.posts);
}

#[test]
fn ocr_pipeline_round_trips_through_posts() {
    // Every screenshot in the corpus must be parseable often enough for the
    // Fig. 7 medians, and recovered values must stay plausible.
    let forum = gen_forum(&ForumConfig::default());
    let mut attempted = 0;
    let mut recovered = 0;
    let mut accurate = 0;
    for post in forum.speed_shares() {
        let shot = post.screenshot.as_ref().unwrap();
        attempted += 1;
        if let Some(d) = ocr::extract::extract(&shot.ocr_text).downlink_mbps {
            recovered += 1;
            let rel = (d - shot.truth.downlink_mbps).abs() / shot.truth.downlink_mbps;
            if rel < 0.15 || (d - shot.truth.downlink_mbps).abs() < 2.0 {
                accurate += 1;
            }
        }
    }
    assert!(attempted > 1000);
    let rate = recovered as f64 / attempted as f64;
    assert!(rate > 0.85, "OCR downlink recovery rate {rate}");
    // A small fraction of recoveries are silently corrupted by glyph/char
    // dropout — realistic OCR behaviour that the monthly medians absorb.
    let accuracy = accurate as f64 / recovered as f64;
    assert!(accuracy > 0.95, "OCR accuracy among recoveries {accuracy}");
}
