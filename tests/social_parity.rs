//! Interned/string parity suite for the §4 social pipeline.
//!
//! The tokenize-once substrate ([`sentiment::TokenCorpus`] and every
//! consumer routed through it) promises **output-identical** results to
//! the retained string-based paths: the corpus stores exactly the tokens
//! `tokenize(post.text())` would produce, the ID-space lexicon tables
//! mirror [`sentiment::Lexicon`] lookup for lookup, and each interned
//! consumer accumulates in the same order as its string twin — so every
//! floating-point operation happens on the same values in the same
//! sequence. These tests pin that contract on a seeded forum across
//! worker counts 1/4, plus empty/unicode/apostrophe edges and a property
//! sweep over arbitrary text.
//!
//! One caveat, pinned here rather than papered over: `EmergingTopicMiner`
//! drains its detections from a `HashMap`, so same-day flags come back in
//! unspecified relative order in *both* paths — the miner comparison
//! sorts by `(date, term)` first. Every value is still compared exactly.

use analytics::time::{Date, Month};
use sentiment::analyzer::STRONG_THRESHOLD;
use sentiment::corpus::CompiledDict;
use sentiment::keywords::KeywordDictionary;
use sentiment::tokenize::tokenize;
use sentiment::{SentimentAnalyzer, SentimentScores, TokenCorpus, WordCloud};
use social::generator::{generate as gen_forum, ForumConfig};
use social::post::{Forum, Post, PostTopic, SentimentClass};
use std::sync::OnceLock;
use usaas::annotate::PeakAnnotator;
use usaas::emerging::{EmergingTopic, EmergingTopicMiner};
use usaas::fulcrum::FulcrumAnalysis;
use usaas::outage::OutageDetector;

/// Worker counts exercised everywhere: the inline single-chunk path and a
/// multi-chunk fan-out.
const WORKER_COUNTS: [usize; 2] = [1, 4];

fn forum() -> &'static Forum {
    static F: OnceLock<Forum> = OnceLock::new();
    F.get_or_init(|| {
        gen_forum(&ForumConfig {
            authors: 1500,
            ..ForumConfig::default()
        })
    })
}

fn corpus() -> &'static TokenCorpus {
    static C: OnceLock<TokenCorpus> = OnceLock::new();
    C.get_or_init(|| forum().token_corpus(4))
}

/// A tiny hand-built forum hitting the awkward text shapes: empty title,
/// empty body, fully empty post, unicode (multi-char lowercase expansions
/// included), apostrophes at token boundaries, and sentiment-free text.
fn edge_forum() -> Forum {
    let post = |day: u8, title: &str, body: &str| Post {
        id: u64::from(day),
        date: Date::from_ymd(2022, 4, day).unwrap(),
        author_id: 7,
        country: "US",
        title: title.to_string(),
        body: body.to_string(),
        upvotes: 12,
        comments: 3,
        screenshot: None,
        topic: PostTopic::General,
        intended: SentimentClass::Neutral,
    };
    Forum {
        posts: vec![
            post(1, "", ""),
            post(1, "Outage again", ""),
            post(2, "", "everything went down, not happy"),
            post(2, "İstanbul ÜBER Köln", "STRAẞE Große naïve test"),
            post(3, "don't can't won’t", "the fix'd thing's fine'"),
            post(3, "   \t\n ", "a b c"),
            post(4, "ΣΊΣΥΦΟΣ network", "МОСКВА Скорость ОТЛИЧНО 100Mbps"),
            post(4, "no internet no internet", "went down and still down"),
        ],
    }
}

fn assert_scores_bit_identical(a: SentimentScores, b: SentimentScores, ctx: &str) {
    for (x, y, field) in [
        (a.positive, b.positive, "positive"),
        (a.negative, b.negative, "negative"),
        (a.neutral, b.neutral, "neutral"),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{field} bits differ: {ctx}");
    }
}

#[test]
fn corpus_is_invariant_over_worker_counts() {
    let reference = forum().token_corpus(1);
    for workers in [2, 3, 4, 16] {
        let par = forum().token_corpus(workers);
        assert_eq!(reference.docs(), par.docs(), "workers {workers}");
        assert_eq!(
            reference.total_tokens(),
            par.total_tokens(),
            "workers {workers}"
        );
        assert_eq!(
            reference.vocab().len(),
            par.vocab().len(),
            "workers {workers}"
        );
        for i in 0..reference.docs() {
            assert_eq!(reference.doc(i), par.doc(i), "doc {i} workers {workers}");
        }
        for id in 0..reference.vocab().len() as u32 {
            assert_eq!(
                reference.vocab().word(id),
                par.vocab().word(id),
                "id {id} workers {workers}"
            );
        }
    }
}

#[test]
fn corpus_tokens_match_the_string_tokenizer() {
    let corpus = corpus();
    assert_eq!(corpus.docs(), forum().len());
    for (i, post) in forum().posts.iter().enumerate() {
        assert_eq!(corpus.doc_words(i), tokenize(&post.text()), "post {i}");
    }
}

#[test]
fn sentiment_scores_are_bit_identical() {
    let analyzer = SentimentAnalyzer::default();
    let reference: Vec<SentimentScores> = forum()
        .posts
        .iter()
        .map(|p| analyzer.score(&p.text()))
        .collect();
    for workers in WORKER_COUNTS {
        let interned = analyzer.score_corpus(corpus(), workers);
        assert_eq!(reference.len(), interned.len());
        for (i, (r, s)) in reference.iter().zip(&interned).enumerate() {
            assert_scores_bit_identical(*r, *s, &format!("post {i} workers {workers}"));
        }
    }
    // The strong-post counts (what Fig. 5 actually consumes) follow.
    let strong = |v: &[SentimentScores]| -> (usize, usize) {
        (
            v.iter().filter(|s| s.positive >= STRONG_THRESHOLD).count(),
            v.iter().filter(|s| s.negative >= STRONG_THRESHOLD).count(),
        )
    };
    assert_eq!(
        strong(&reference),
        strong(&analyzer.score_corpus(corpus(), 4))
    );
}

#[test]
fn keyword_counts_are_identical() {
    let dict = KeywordDictionary::outages();
    let compiled = CompiledDict::compile(&dict, corpus().vocab());
    let reference: Vec<usize> = forum()
        .posts
        .iter()
        .map(|p| dict.count_matches(&p.text()))
        .collect();
    for workers in WORKER_COUNTS {
        assert_eq!(
            reference,
            compiled.count_corpus(corpus(), workers),
            "workers {workers}"
        );
    }
}

#[test]
fn day_clouds_are_identical() {
    let annotator = PeakAnnotator::default();
    let (start, end) = forum().date_range().unwrap();
    // A spread of days incl. the Apr 22 '22 outage and the empty day after
    // the corpus ends.
    let days = [
        start,
        start.offset(100),
        Date::from_ymd(2022, 4, 22).unwrap(),
        end,
        end.offset(1),
    ];
    for date in days {
        let reference = annotator.day_cloud(forum(), date, 30);
        let interned = annotator.day_cloud_interned(forum(), corpus(), date, 30);
        assert_eq!(reference, interned, "cloud mismatch on {date}");
    }
    // And the plain WordCloud entry point over an arbitrary doc subset.
    let texts: Vec<String> = forum().posts[10..60].iter().map(|p| p.text()).collect();
    let reference = WordCloud::from_documents(texts.iter().map(String::as_str), 25);
    let interned = WordCloud::from_corpus_docs(corpus(), 10..60, 25);
    assert_eq!(reference, interned);
}

#[test]
fn outage_detection_is_identical() {
    let det = OutageDetector::default();
    let ref_series = det.keyword_series(forum()).unwrap();
    let ref_detections = det.detect(forum()).unwrap();
    for workers in WORKER_COUNTS {
        let series = det
            .keyword_series_interned(forum(), corpus(), workers)
            .unwrap();
        assert_eq!(
            format!("{ref_series:?}"),
            format!("{series:?}"),
            "keyword series mismatch (workers {workers})"
        );
        assert_eq!(
            ref_detections,
            det.detect_interned(forum(), corpus(), workers).unwrap(),
            "detections mismatch (workers {workers})"
        );
    }
    // The ablation (no negative filter) too.
    let ablated = OutageDetector {
        negative_filter: false,
        ..OutageDetector::default()
    };
    assert_eq!(
        ablated.detect(forum()).unwrap(),
        ablated.detect_interned(forum(), corpus(), 4).unwrap()
    );
}

#[test]
fn annotated_peaks_are_identical() {
    let annotator = PeakAnnotator::default();
    let ref_series = annotator.sentiment_series(forum()).unwrap();
    let reference = annotator.annotate(forum(), 5).unwrap();
    for workers in WORKER_COUNTS {
        let series = annotator
            .sentiment_series_interned(forum(), corpus(), workers)
            .unwrap();
        assert_eq!(
            format!("{ref_series:?}"),
            format!("{series:?}"),
            "sentiment series mismatch (workers {workers})"
        );
        let interned = annotator
            .annotate_interned(forum(), corpus(), 5, workers)
            .unwrap();
        assert_eq!(
            format!("{reference:?}"),
            format!("{interned:?}"),
            "annotated peaks mismatch (workers {workers})"
        );
    }
}

/// Sort key making the miner's same-day flag order deterministic.
fn topic_key(t: &EmergingTopic) -> (Date, String) {
    (t.first_flagged, t.term.clone())
}

#[test]
fn emerging_topics_are_identical() {
    let miner = EmergingTopicMiner::default();
    let mut reference = miner.mine(forum()).unwrap();
    let mut interned = miner.mine_interned(forum(), corpus()).unwrap();
    reference.sort_by_key(topic_key);
    interned.sort_by_key(topic_key);
    // Every field compares exactly: window/history weights are sums of
    // integer-valued engagement weights, so shares and novelty ratios are
    // computed on identical values in both paths.
    assert_eq!(reference, interned);
}

#[test]
fn fulcrum_series_is_identical() {
    let analysis = FulcrumAnalysis::default();
    let start = Month::new(2021, 1).unwrap();
    let end = Month::new(2022, 12).unwrap();
    let reference = analysis.analyze(forum(), start, end).unwrap();
    let interned = analysis
        .analyze_interned(forum(), corpus(), start, end)
        .unwrap();
    assert_eq!(reference, interned);
}

#[test]
fn edge_forum_agrees_everywhere() {
    let forum = edge_forum();
    let analyzer = SentimentAnalyzer::default();
    let dict = KeywordDictionary::outages();
    for workers in WORKER_COUNTS {
        let corpus = forum.token_corpus(workers);
        assert_eq!(corpus.docs(), forum.len());
        let compiled = CompiledDict::compile(&dict, corpus.vocab());
        let scores = analyzer.score_corpus(&corpus, workers);
        for (i, post) in forum.posts.iter().enumerate() {
            let text = post.text();
            assert_eq!(
                corpus.doc_words(i),
                tokenize(&text),
                "tokens, post {i} workers {workers}"
            );
            assert_scores_bit_identical(
                analyzer.score(&text),
                scores[i],
                &format!("edge post {i} workers {workers}"),
            );
            assert_eq!(
                dict.count_matches(&text),
                compiled.count_ids(corpus.doc(i)),
                "keyword count, post {i} workers {workers}"
            );
        }
        // The empty post scores neutral through both paths.
        assert_eq!(scores[0], SentimentScores::neutral());
        // Detector/annotator run end to end on the edge corpus too.
        let det = OutageDetector::default();
        assert_eq!(
            det.detect(&forum).unwrap(),
            det.detect_interned(&forum, &corpus, workers).unwrap()
        );
        let annotator = PeakAnnotator::default();
        assert_eq!(
            format!("{:?}", annotator.sentiment_series(&forum).unwrap()),
            format!(
                "{:?}",
                annotator
                    .sentiment_series_interned(&forum, &corpus, workers)
                    .unwrap()
            )
        );
    }
}

#[test]
fn empty_forum_edges_agree() {
    let forum = Forum::default();
    let corpus = forum.token_corpus(4);
    assert!(corpus.is_empty());
    let det = OutageDetector::default();
    assert_eq!(
        format!("{:?}", det.keyword_series(&forum).err()),
        format!(
            "{:?}",
            det.keyword_series_interned(&forum, &corpus, 4).err()
        )
    );
    let annotator = PeakAnnotator::default();
    assert_eq!(
        format!("{:?}", annotator.annotate(&forum, 3).err()),
        format!(
            "{:?}",
            annotator.annotate_interned(&forum, &corpus, 3, 4).err()
        )
    );
    let miner = EmergingTopicMiner::default();
    assert_eq!(
        format!("{:?}", miner.mine(&forum).err()),
        format!("{:?}", miner.mine_interned(&forum, &corpus).err())
    );
    let fulcrum = FulcrumAnalysis::default();
    let (start, end) = (Month::new(2021, 1).unwrap(), Month::new(2021, 3).unwrap());
    assert_eq!(
        format!("{:?}", fulcrum.analyze(&forum, start, end).err()),
        format!(
            "{:?}",
            fulcrum.analyze_interned(&forum, &corpus, start, end).err()
        )
    );
}

mod properties {
    use super::*;
    use proptest::prelude::*;
    use sentiment::NgramCounts;

    proptest! {
        /// The interned pipeline matches the string pipeline on arbitrary
        /// text: token sequence, sentiment score, keyword counts, top-k.
        #[test]
        fn interned_matches_string_pipeline(
            texts in prop::collection::vec(".{0,200}", 0..12),
            workers in 1usize..5,
        ) {
            let corpus = TokenCorpus::from_texts(&texts, workers);
            prop_assert_eq!(corpus.docs(), texts.len());
            let analyzer = SentimentAnalyzer::default();
            let dict = KeywordDictionary::outages();
            let compiled = CompiledDict::compile(&dict, corpus.vocab());
            let scores = analyzer.score_corpus(&corpus, workers);
            let mut str_counts = NgramCounts::new();
            let mut id_counts = sentiment::IdNgramCounts::new();
            for (i, text) in texts.iter().enumerate() {
                // Same token sequence…
                prop_assert_eq!(corpus.doc_words(i), tokenize(text));
                // …same sentiment score, to the bit…
                let reference = analyzer.score(text);
                prop_assert_eq!(reference.positive.to_bits(), scores[i].positive.to_bits());
                prop_assert_eq!(reference.negative.to_bits(), scores[i].negative.to_bits());
                prop_assert_eq!(reference.neutral.to_bits(), scores[i].neutral.to_bits());
                // …same keyword match count…
                prop_assert_eq!(dict.count_matches(text), compiled.count_ids(corpus.doc(i)));
                str_counts.add_weighted(text, 1.0 + i as f64);
                id_counts.add_unigrams(&corpus, i, 1.0 + i as f64);
            }
            // …and the same weighted top-k n-grams.
            prop_assert_eq!(
                str_counts.top_k(10),
                id_counts.top_k(corpus.vocab(), 10)
            );
        }

        /// Worker count never changes the corpus.
        #[test]
        fn corpus_construction_is_deterministic(
            texts in prop::collection::vec(".{0,120}", 0..16),
        ) {
            let one = TokenCorpus::from_texts(&texts, 1);
            let par = TokenCorpus::from_texts(&texts, 4);
            prop_assert_eq!(one.docs(), par.docs());
            prop_assert_eq!(one.vocab().len(), par.vocab().len());
            for i in 0..one.docs() {
                prop_assert_eq!(one.doc(i), par.doc(i));
            }
        }
    }
}

mod service_level {
    use super::*;
    use conference::dataset::{generate, DatasetConfig};
    use usaas::service::{Answer, Query, UsaasService};

    fn small_service() -> UsaasService {
        let dataset = generate(&DatasetConfig::small(400, 21));
        let forum = gen_forum(&ForumConfig {
            authors: 800,
            ..ForumConfig::default()
        });
        UsaasService::build(dataset, forum, 4)
    }

    /// Every §4 service query answers identically to the string-based
    /// reference computed directly over the service's own forum.
    #[test]
    fn service_social_answers_match_string_paths() {
        let svc = small_service();
        let snap = svc.snapshot();
        let forum = snap.forum();

        let Answer::Outages(outages) = svc.query(&Query::OutageTimeline).unwrap() else {
            panic!("wrong answer type");
        };
        assert_eq!(outages, OutageDetector::default().detect(forum).unwrap());

        let Answer::Peaks(peaks) = svc.query(&Query::SentimentPeaks { k: 3 }).unwrap() else {
            panic!("wrong answer type");
        };
        let reference = PeakAnnotator::default().annotate(forum, 3).unwrap();
        assert_eq!(format!("{peaks:?}"), format!("{reference:?}"));

        let Answer::Topics(mut topics) = svc.query(&Query::EmergingTopics).unwrap() else {
            panic!("wrong answer type");
        };
        let mut reference = EmergingTopicMiner::default().mine(forum).unwrap();
        topics.sort_by_key(topic_key);
        reference.sort_by_key(topic_key);
        assert_eq!(topics, reference);

        let Answer::Speeds(speeds) = svc.query(&Query::SpeedTrend).unwrap() else {
            panic!("wrong answer type");
        };
        let (first, last) = forum
            .date_range()
            .map(|(a, b)| (a.month(), b.month()))
            .unwrap();
        let reference = FulcrumAnalysis::default()
            .analyze(forum, first, last)
            .unwrap();
        assert_eq!(speeds, reference);
    }

    #[test]
    fn service_corpus_is_memoized_and_worker_invariant() {
        let svc = small_service();
        let snap = svc.snapshot();
        let a = snap.social_corpus() as *const TokenCorpus;
        let _ = svc.query(&Query::OutageTimeline);
        let b = snap.social_corpus() as *const TokenCorpus;
        assert_eq!(a, b, "corpus must build once per generation");
        // A service built with a different worker budget holds the same
        // corpus content.
        let single = UsaasService::build(
            generate(&DatasetConfig::small(50, 21)),
            snap.forum().clone(),
            1,
        );
        let single_snap = single.snapshot();
        let (c1, c4) = (single_snap.social_corpus(), snap.social_corpus());
        assert_eq!(c1.docs(), c4.docs());
        assert_eq!(c1.total_tokens(), c4.total_tokens());
        for i in 0..c1.docs() {
            assert_eq!(c1.doc(i), c4.doc(i), "doc {i}");
        }
    }
}
