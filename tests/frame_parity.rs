//! Frame/AoS parity suite.
//!
//! The columnar [`usaas::SessionFrame`] aggregation paths promise
//! **bit-identical** results to the retained array-of-structs reference
//! implementations: the frame visits sessions in dataset order, parallel
//! chunks are merged in chunk order, and the finishing arithmetic is
//! shared — so every floating-point operation happens on the same values
//! in the same sequence. These tests pin that contract on a seeded
//! dataset across every sweep/engagement combination and worker count,
//! plus the empty-dataset and single-session edges.

use conference::dataset::{generate, DatasetConfig};
use conference::records::{CallDataset, EngagementMetric, NetworkMetric};
use std::sync::OnceLock;
use usaas::{correlate, predict, FeatureSet, SessionFrame};

fn dataset() -> &'static CallDataset {
    static DS: OnceLock<CallDataset> = OnceLock::new();
    // Elevated feedback rate so the MOS paths have enough rated sessions.
    DS.get_or_init(|| {
        let mut sim = conference::CallSimulator::default();
        sim.feedback.rate = 0.2;
        conference::dataset::generate_with(&DatasetConfig::small(3000, 0x9A21), &sim)
    })
}

fn frame() -> &'static SessionFrame {
    static F: OnceLock<SessionFrame> = OnceLock::new();
    F.get_or_init(|| SessionFrame::from_dataset(dataset(), 4))
}

/// Worker counts exercised for every parallel aggregate: the inline
/// single-chunk path, a multi-chunk fan-out, and an over-subscribed one.
const WORKER_COUNTS: [usize; 3] = [1, 4, 8];

#[test]
fn engagement_curves_are_bit_identical() {
    for sweep in NetworkMetric::ALL {
        for engagement in EngagementMetric::ALL {
            let reference = correlate::engagement_curve(dataset(), sweep, engagement, 8, 8)
                .expect("reference curve");
            for workers in WORKER_COUNTS {
                let columnar =
                    correlate::engagement_curve_frame(frame(), sweep, engagement, 8, 8, workers)
                        .expect("frame curve");
                assert_eq!(
                    reference, columnar,
                    "curve mismatch: sweep {sweep:?} engagement {engagement:?} workers {workers}"
                );
            }
        }
    }
}

#[test]
fn compounding_grids_are_bit_identical() {
    for bins in [4, 5] {
        for engagement in EngagementMetric::ALL {
            let reference = correlate::compounding_grid(dataset(), engagement, bins, 5)
                .expect("reference grid");
            for workers in WORKER_COUNTS {
                let columnar =
                    correlate::compounding_grid_frame(frame(), engagement, bins, 5, workers)
                        .expect("frame grid");
                assert_eq!(
                    reference, columnar,
                    "grid mismatch: engagement {engagement:?} bins {bins} workers {workers}"
                );
            }
        }
    }
}

#[test]
fn platform_curves_are_bit_identical() {
    for sweep in [NetworkMetric::LatencyMs, NetworkMetric::LossPct] {
        let reference =
            correlate::platform_curves(dataset(), sweep, EngagementMetric::Presence, 4, 5)
                .expect("reference platform curves");
        for workers in WORKER_COUNTS {
            let columnar = correlate::platform_curves_frame(
                frame(),
                sweep,
                EngagementMetric::Presence,
                4,
                5,
                workers,
            )
            .expect("frame platform curves");
            assert_eq!(
                reference, columnar,
                "platform curves mismatch: sweep {sweep:?} workers {workers}"
            );
        }
    }
}

#[test]
fn mos_paths_are_bit_identical() {
    for engagement in EngagementMetric::ALL {
        let reference =
            correlate::mos_by_engagement(dataset(), engagement, 4, 3).expect("reference MOS curve");
        let columnar =
            correlate::mos_by_engagement_frame(frame(), engagement, 4, 3).expect("frame MOS curve");
        assert_eq!(reference, columnar, "MOS curve mismatch: {engagement:?}");
    }
    let reference = correlate::mos_correlations(dataset()).expect("reference ranking");
    let columnar = correlate::mos_correlations_frame(frame()).expect("frame ranking");
    assert_eq!(reference.len(), columnar.len());
    for ((m_ref, r_ref), (m_col, r_col)) in reference.iter().zip(&columnar) {
        assert_eq!(m_ref, m_col, "ranking order mismatch");
        assert_eq!(
            r_ref.to_bits(),
            r_col.to_bits(),
            "correlation bits mismatch for {m_ref:?}"
        );
    }
}

#[test]
fn predictor_evaluations_are_bit_identical() {
    for set in [
        FeatureSet::NetworkOnly,
        FeatureSet::EngagementOnly,
        FeatureSet::Full,
    ] {
        let (ref_model, ref_eval) =
            predict::train_and_evaluate(dataset(), set, 4).expect("reference predictor");
        let (frame_model, frame_eval) =
            predict::train_and_evaluate_frame(frame(), set, 4).expect("frame predictor");
        assert_eq!(ref_model, frame_model, "model mismatch for {set:?}");
        assert_eq!(ref_eval, frame_eval, "evaluation mismatch for {set:?}");
    }
}

#[test]
fn empty_dataset_edges_agree() {
    let empty = CallDataset::default();
    let empty_frame = SessionFrame::from_dataset(&empty, 4);
    assert!(empty_frame.is_empty());
    for workers in WORKER_COUNTS {
        let reference = correlate::engagement_curve(
            &empty,
            NetworkMetric::LatencyMs,
            EngagementMetric::Presence,
            6,
            8,
        );
        let columnar = correlate::engagement_curve_frame(
            &empty_frame,
            NetworkMetric::LatencyMs,
            EngagementMetric::Presence,
            6,
            8,
            workers,
        );
        assert_eq!(
            format!("{reference:?}"),
            format!("{columnar:?}"),
            "empty-dataset curve outcome must match (workers {workers})"
        );
        let reference = correlate::compounding_grid(&empty, EngagementMetric::Presence, 4, 5);
        let columnar = correlate::compounding_grid_frame(
            &empty_frame,
            EngagementMetric::Presence,
            4,
            5,
            workers,
        );
        assert_eq!(format!("{reference:?}"), format!("{columnar:?}"));
    }
    assert_eq!(
        format!("{:?}", correlate::mos_correlations(&empty)),
        format!("{:?}", correlate::mos_correlations_frame(&empty_frame))
    );
    assert_eq!(
        format!(
            "{:?}",
            predict::train_and_evaluate(&empty, FeatureSet::Full, 4).err()
        ),
        format!(
            "{:?}",
            predict::train_and_evaluate_frame(&empty_frame, FeatureSet::Full, 4).err()
        )
    );
}

#[test]
fn single_session_edges_agree() {
    // One call fans out into one session per participant; truncate to a
    // true single-session dataset.
    let mut single = generate(&DatasetConfig::small(1, 0x51));
    single.sessions.truncate(1);
    assert_eq!(single.len(), 1);
    let single_frame = SessionFrame::from_dataset(&single, 4);
    assert_eq!(single_frame.len(), 1);
    for workers in WORKER_COUNTS {
        for sweep in NetworkMetric::ALL {
            let reference =
                correlate::engagement_curve(&single, sweep, EngagementMetric::Presence, 4, 1);
            let columnar = correlate::engagement_curve_frame(
                &single_frame,
                sweep,
                EngagementMetric::Presence,
                4,
                1,
                workers,
            );
            assert_eq!(
                format!("{reference:?}"),
                format!("{columnar:?}"),
                "single-session curve outcome must match (sweep {sweep:?} workers {workers})"
            );
        }
        let reference = correlate::platform_curves(
            &single,
            NetworkMetric::LatencyMs,
            EngagementMetric::Presence,
            4,
            1,
        );
        let columnar = correlate::platform_curves_frame(
            &single_frame,
            NetworkMetric::LatencyMs,
            EngagementMetric::Presence,
            4,
            1,
            workers,
        );
        assert_eq!(format!("{reference:?}"), format!("{columnar:?}"));
    }
}
