//! Cluster scatter-gather parity suite.
//!
//! [`usaas::PartitionedService`] promises answers **bit-identical** to a
//! single [`usaas::UsaasService`] over the same data — at every partition
//! count and worker count, across appends, and through per-partition crash
//! recovery. These tests pin that contract four ways:
//!
//! 1. A static matrix: partitions 1/2/4/8 × workers 1/4/8 all answer the
//!    full hot query set byte-for-byte like the single service.
//! 2. A property sweep over random append/query schedules (sessions-only,
//!    posts-only, mixed, empty, and fully-quarantined batches) asserting
//!    the cluster tracks the single reference after every schedule.
//! 3. A per-partition kill-point matrix: truncate one partition's journal
//!    tail (a partition that crashed before persisting a cluster-committed
//!    batch) and prove `open_or_recover` rolls it forward to answers
//!    bit-identical to a never-crashed cluster — and that the repair is
//!    reported, not swallowed.
//! 4. Degraded-partition serving: a poisoned ingest leaves the cluster
//!    answering while `ClusterHealth` aggregates the damage.

use analytics::time::Date;
use conference::dataset::{generate, DatasetConfig};
use conference::records::{CallDataset, EngagementMetric, NetworkMetric, SessionRecord};
use netsim::access::AccessType;
use social::generator::{generate as gen_forum, ForumConfig};
use social::post::{Forum, Post};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use usaas::{
    journal_record_offsets, FeatureSet, IngestConfig, ItemSource, PartitionedService, Query,
    RawItem, Source, UsaasService, JOURNAL_FILE,
};

const PARTITION_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WORKER_COUNTS: [usize; 3] = [1, 4, 8];

fn base_dataset() -> &'static CallDataset {
    static D: OnceLock<CallDataset> = OnceLock::new();
    D.get_or_init(|| generate(&DatasetConfig::small(300, 33)))
}

fn base_forum() -> &'static Forum {
    static F: OnceLock<Forum> = OnceLock::new();
    F.get_or_init(|| {
        gen_forum(&ForumConfig {
            authors: 120,
            end: Date::from_ymd(2021, 6, 30).unwrap(),
            ..ForumConfig::default()
        })
    })
}

fn extra_sessions_a() -> &'static Vec<SessionRecord> {
    static S: OnceLock<Vec<SessionRecord>> = OnceLock::new();
    S.get_or_init(|| generate(&DatasetConfig::small(40, 77)).sessions)
}

fn extra_sessions_b() -> &'static Vec<SessionRecord> {
    static S: OnceLock<Vec<SessionRecord>> = OnceLock::new();
    S.get_or_init(|| generate(&DatasetConfig::small(25, 5)).sessions)
}

fn extra_posts() -> &'static Vec<Post> {
    static P: OnceLock<Vec<Post>> = OnceLock::new();
    P.get_or_init(|| {
        gen_forum(&ForumConfig {
            seed: 9,
            authors: 60,
            end: Date::from_ymd(2021, 3, 31).unwrap(),
            ..ForumConfig::default()
        })
        .posts
    })
}

/// Every query family the router merges.
fn hot_queries() -> Vec<Query> {
    vec![
        Query::EngagementCurve {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::Presence,
            bins: 5,
        },
        Query::EngagementCurve {
            sweep: NetworkMetric::LossPct,
            engagement: EngagementMetric::CamOn,
            bins: 4,
        },
        Query::CompoundingGrid {
            engagement: EngagementMetric::Presence,
            bins: 4,
        },
        Query::PlatformSensitivity {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::Presence,
        },
        Query::MosCorrelation,
        Query::PredictMos {
            features: FeatureSet::Full,
        },
        Query::SentimentPeaks { k: 2 },
        Query::DeploymentAdvice,
        Query::OutageTimeline,
        Query::CrossNetwork {
            access: AccessType::SatelliteLeo,
        },
        Query::SpeedTrend,
        Query::EmergingTopics,
    ]
}

fn single_answers(svc: &UsaasService, queries: &[Query]) -> Vec<String> {
    queries
        .iter()
        .map(|q| format!("{q:?} => {:?}", svc.query(q)))
        .collect()
}

fn cluster_answers(cluster: &PartitionedService, queries: &[Query]) -> Vec<String> {
    queries
        .iter()
        .map(|q| format!("{q:?} => {:?}", cluster.query(q)))
        .collect()
}

/// Partitions 1/2/4/8 × workers 1/4/8 all answer the full hot query set
/// byte-for-byte like the single service — Debug formatting renders every
/// float exactly, so string equality is bit equality.
#[test]
fn cluster_matrix_matches_single_service() {
    let queries = hot_queries();
    let reference = UsaasService::build(base_dataset().clone(), base_forum().clone(), 4);
    let expected = single_answers(&reference, &queries);
    let expected_signals = reference.signal_counts();
    for partitions in PARTITION_COUNTS {
        for workers in WORKER_COUNTS {
            let cluster = PartitionedService::build(
                base_dataset().clone(),
                base_forum().clone(),
                partitions,
                workers,
            );
            assert_eq!(cluster.partitions(), partitions);
            assert_eq!(
                cluster.signal_counts(),
                expected_signals,
                "partitions {partitions} workers {workers}: store counts diverged"
            );
            assert_eq!(
                expected,
                cluster_answers(&cluster, &queries),
                "partitions {partitions} workers {workers}: merged answers diverged"
            );
        }
    }
}

/// The merged-answer cache serves repeat queries, and `query_batch` pins
/// one snapshot whose answers equal the sequential ones.
#[test]
fn cluster_caching_and_batch_are_consistent() {
    let queries = hot_queries();
    let cluster = PartitionedService::build(base_dataset().clone(), base_forum().clone(), 3, 4);
    let first = cluster_answers(&cluster, &queries);
    let misses = cluster.cache_misses();
    let again = cluster_answers(&cluster, &queries);
    assert_eq!(first, again, "cached answers diverged from first serve");
    assert_eq!(
        cluster.cache_misses(),
        misses,
        "repeat queries must hit the merged-answer cache"
    );
    assert!(cluster.cache_hits() >= queries.len());
    let batch: Vec<String> = cluster
        .query_batch(&queries)
        .into_iter()
        .zip(&queries)
        .map(|(a, q)| format!("{q:?} => {a:?}"))
        .collect();
    assert_eq!(first, batch, "query_batch diverged from sequential queries");
    // The uncached path recomputes the same merged answers.
    for (q, served) in queries.iter().zip(&first) {
        assert_eq!(
            *served,
            format!("{q:?} => {:?}", cluster.answer_fresh(q)),
            "answer_fresh diverged from the cached merge"
        );
    }
}

/// Apply append op `tag` to both sides of a parity pair.
fn apply_op_single(svc: &UsaasService, tag: u8) {
    match tag {
        0 => {
            svc.append_batch(Vec::new(), Vec::new());
        }
        1 => {
            svc.append_batch(extra_sessions_a().clone(), Vec::new());
        }
        2 => {
            let posts = extra_posts();
            svc.append_batch(Vec::new(), posts[..15.min(posts.len())].to_vec());
        }
        3 => {
            let posts = extra_posts();
            svc.append_batch(
                extra_sessions_b().clone(),
                posts[15..30.min(posts.len())].to_vec(),
            );
        }
        4 => {
            let items = vec![
                RawItem::Poison("bad upstream frame"),
                RawItem::Poison("double-freed buffer"),
            ];
            let sources: Vec<Box<dyn Source>> =
                vec![Box::new(ItemSource::new("poison-only", items))];
            svc.ingest_append(sources, &IngestConfig::with_workers(1));
        }
        _ => panic!("unknown op {tag}"),
    }
}

fn apply_op_cluster(cluster: &PartitionedService, tag: u8) {
    match tag {
        0 => {
            cluster.append_batch(Vec::new(), Vec::new());
        }
        1 => {
            cluster.append_batch(extra_sessions_a().clone(), Vec::new());
        }
        2 => {
            let posts = extra_posts();
            cluster.append_batch(Vec::new(), posts[..15.min(posts.len())].to_vec());
        }
        3 => {
            let posts = extra_posts();
            cluster.append_batch(
                extra_sessions_b().clone(),
                posts[15..30.min(posts.len())].to_vec(),
            );
        }
        4 => {
            let items = vec![
                RawItem::Poison("bad upstream frame"),
                RawItem::Poison("double-freed buffer"),
            ];
            let sources: Vec<Box<dyn Source>> =
                vec![Box::new(ItemSource::new("poison-only", items))];
            cluster.ingest_append(sources, &IngestConfig::with_workers(1));
        }
        _ => panic!("unknown op {tag}"),
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random append/query schedules: after every schedule the cluster
        /// answers every hot query bit-identically to a single service
        /// that lived through the same appends, and the no-op/poison
        /// batches leave both epochs in lockstep.
        #[test]
        fn cluster_tracks_single_service_across_appends(
            schedule in prop::collection::vec(0u8..5, 0..4),
            partitions in 2usize..5,
        ) {
            let queries = hot_queries();
            let single =
                UsaasService::build(base_dataset().clone(), base_forum().clone(), 4);
            let cluster = PartitionedService::build(
                base_dataset().clone(),
                base_forum().clone(),
                partitions,
                4,
            );
            for &op in &schedule {
                apply_op_single(&single, op);
                apply_op_cluster(&cluster, op);
                prop_assert_eq!(
                    single.epoch(), cluster.epoch(),
                    "schedule {:?} partitions {}: epochs diverged", schedule, partitions
                );
            }
            prop_assert_eq!(
                single_answers(&single, &queries),
                cluster_answers(&cluster, &queries),
                "schedule {:?} partitions {}: answers diverged", schedule, partitions
            );
        }
    }
}

/// Fresh scratch directory under the system temp dir, emptied first.
fn tmp_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("usaas-cluster-{}-{test}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Copy a cluster persistence tree (root files plus `part-N/` dirs).
fn copy_tree(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), to).unwrap();
        }
    }
}

/// Truncate `path`'s journal to its first `keep` records.
fn truncate_journal(path: &Path, keep: usize) {
    let offsets = journal_record_offsets(path).unwrap();
    if keep < offsets.len() {
        let bytes = fs::read(path).unwrap();
        fs::write(path, &bytes[..offsets[keep] as usize]).unwrap();
    }
}

/// The recovery fingerprint: epoch, store counts, durable health (minus
/// recovery warnings, which legitimately differ), dead-letters, and the
/// debug-formatted answer to every query.
fn cluster_fingerprint(cluster: &PartitionedService) -> Vec<String> {
    let health = cluster.health();
    let mut out = vec![
        format!("epoch={}", cluster.epoch()),
        format!("signals={:?}", cluster.signal_counts()),
        format!(
            "health q={} u={} t={} open={:?}",
            health.quarantined_total,
            health.unfed_total,
            health.breaker_trips_total,
            health.open_breakers
        ),
        format!("dead_letters={:?}", cluster.dead_letters()),
    ];
    out.extend(cluster_answers(cluster, &recovery_queries()));
    out
}

/// A lean query set covering every merge family the recovery must get
/// bit-right (order-map replay, rated gathers, text scans, the join).
fn recovery_queries() -> Vec<Query> {
    vec![
        Query::EngagementCurve {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::Presence,
            bins: 5,
        },
        Query::MosCorrelation,
        Query::OutageTimeline,
        Query::SentimentPeaks { k: 2 },
        Query::SpeedTrend,
        Query::CrossNetwork {
            access: AccessType::SatelliteLeo,
        },
    ]
}

/// Run the durable workload in `dir`: build 3 partitions, append a
/// sessions-only, a poisoned, and a mixed batch.
fn run_cluster_workload(dir: &Path) -> PartitionedService {
    let cluster = PartitionedService::build_persistent(
        base_dataset().clone(),
        base_forum().clone(),
        3,
        2,
        dir,
    )
    .unwrap();
    apply_op_cluster(&cluster, 1);
    {
        // A poisoned batch alongside accepted posts, so dead-letters ride
        // the cluster log; one worker keeps quarantine order deterministic.
        let posts = extra_posts();
        let mut items: Vec<RawItem> = vec![RawItem::Poison("bad upstream frame")];
        items.extend(
            posts[..15.min(posts.len())]
                .iter()
                .map(|p| RawItem::Post(Box::new(p.clone()))),
        );
        let sources: Vec<Box<dyn Source>> = vec![Box::new(ItemSource::new("flaky-feed", items))];
        cluster.ingest_append(sources, &IngestConfig::with_workers(1));
    }
    apply_op_cluster(&cluster, 3);
    cluster
}

/// Per-partition kill points: for every partition, crash it one committed
/// batch early (truncate its journal tail) and prove `open_or_recover`
/// rolls it forward to a fingerprint bit-identical to the never-crashed
/// cluster — with the repair reported in `recovery_warnings` and the
/// degraded cluster still serving every query.
#[test]
fn partition_kill_points_recover_bit_identically() {
    let dir = tmp_dir("killpoints");
    let live = run_cluster_workload(&dir);
    let live_print = cluster_fingerprint(&live);
    let partitions = live.partitions();
    drop(live);
    for victim in 0..partitions {
        for workers in [1, 4] {
            let case = tmp_dir(&format!("killpoints-p{victim}-w{workers}"));
            copy_tree(&dir, &case);
            let part_journal = case.join(format!("part-{victim}")).join(JOURNAL_FILE);
            // `offsets[0] == 0` plus one end offset per record.
            let records = journal_record_offsets(&part_journal).unwrap().len() - 1;
            if records == 0 {
                continue; // this partition never saw a non-empty batch
            }
            truncate_journal(&part_journal, records - 1);
            let recovered = PartitionedService::open_or_recover(&case, workers).unwrap();
            let health = recovered.health();
            assert!(
                health
                    .recovery_warnings
                    .iter()
                    .any(|w| w.contains(&format!("part-{victim}"))),
                "victim {victim}: the roll-forward must be reported, got {:?}",
                health.recovery_warnings
            );
            assert_eq!(
                live_print,
                cluster_fingerprint(&recovered),
                "victim {victim} workers {workers}: recovered cluster diverged"
            );
        }
    }
}

/// A clean reopen (no crash) is also bit-identical and reports no
/// partition roll-forwards.
#[test]
fn clean_reopen_is_bit_identical() {
    let dir = tmp_dir("clean-reopen");
    let live = run_cluster_workload(&dir);
    let live_print = cluster_fingerprint(&live);
    drop(live);
    let reopened = PartitionedService::open_or_recover(&dir, 2).unwrap();
    assert_eq!(live_print, cluster_fingerprint(&reopened));
    let health = reopened.health();
    assert!(
        !health
            .recovery_warnings
            .iter()
            .any(|w| w.contains("replaying")),
        "clean reopen must not roll anything forward: {:?}",
        health.recovery_warnings
    );
}

/// Degraded-partition serving: a poisoned ingest leaves the cluster
/// answering every query while `ClusterHealth` aggregates the quarantine
/// instead of silently dropping it.
#[test]
fn degraded_cluster_keeps_serving_and_reports_health() {
    let cluster = PartitionedService::build(base_dataset().clone(), base_forum().clone(), 2, 2);
    let before = cluster_answers(&cluster, &recovery_queries());
    assert!(!cluster.health().is_degraded(), "clean build must be clean");
    apply_op_cluster(&cluster, 4); // poison-only: nothing committed
    let health = cluster.health();
    assert_eq!(health.partitions.len(), 2);
    assert!(health.quarantined_total >= 2, "quarantine must aggregate");
    assert!(health.is_degraded());
    assert_eq!(cluster.dead_letters().len(), health.quarantined_total);
    assert_eq!(
        before,
        cluster_answers(&cluster, &recovery_queries()),
        "a fully-quarantined batch must not disturb answers"
    );
    let (answer, annotated) = cluster.query_with_health(&Query::MosCorrelation);
    assert!(answer.is_ok(), "degraded cluster must keep serving");
    assert!(annotated.is_degraded());
}

/// `build_persistent` refuses a directory that already holds a cluster.
#[test]
fn build_persistent_refuses_existing_cluster() {
    let dir = tmp_dir("refuse");
    let first = PartitionedService::build_persistent(
        base_dataset().clone(),
        base_forum().clone(),
        2,
        2,
        &dir,
    );
    assert!(first.is_ok());
    drop(first);
    let second = PartitionedService::build_persistent(
        base_dataset().clone(),
        base_forum().clone(),
        2,
        2,
        &dir,
    );
    assert!(
        second.is_err(),
        "a second build over a persisted cluster must be refused"
    );
}

/// Per-partition journal compaction: the root cluster log is never
/// compacted (it is the roll-forward source of truth), while each
/// partition's journal drops records covered by its oldest retained full
/// snapshot — and the compacted cluster still recovers bit-identically.
#[test]
fn partition_journals_compact_but_the_root_log_survives() {
    let dir = tmp_dir("compaction");
    let mut base = generate(&DatasetConfig::small(40, 11));
    base.sessions.truncate(30);
    let cluster =
        PartitionedService::build_persistent(base, Forum { posts: Vec::new() }, 3, 2, &dir)
            .unwrap();
    // Rounds of appends big enough to outgrow every partition's base,
    // each followed by a checkpoint: every partition accumulates full
    // snapshots (with diffs in between while the tail trails the grown
    // base), retention prunes its initial snapshot-0, and the compaction
    // bound advances past the first journal record.
    for round in 0..3u64 {
        let delta = generate(&DatasetConfig::small(220, 100 + round));
        cluster.append_batch(delta.sessions, Vec::new());
        cluster.checkpoint().unwrap();
    }
    let reports = cluster.compact_journals().unwrap();
    assert_eq!(reports.len(), 3, "one report per partition");
    for (p, report) in reports.iter().enumerate() {
        assert!(
            report.dropped_records >= 1,
            "part-{p}: expected a dropped prefix, got {report:?}"
        );
        assert!(report.bytes_after < report.bytes_before, "part-{p}");
    }

    let health = cluster.health();
    let stats = health.journal.expect("persistent cluster reports stats");
    assert_eq!(
        stats.oldest_live_seq, 1,
        "the root log keeps its base record — it is never compacted"
    );
    assert_eq!(stats.compactions, 3);
    assert!(stats.records_compacted >= 3);
    // Root log intact on disk: base record + one record per append round.
    let root_records = journal_record_offsets(&dir.join(JOURNAL_FILE))
        .unwrap()
        .len()
        - 1;
    assert_eq!(root_records, 4);

    let live_print = cluster_fingerprint(&cluster);
    drop(cluster);
    let recovered = PartitionedService::open_or_recover(&dir, 2).unwrap();
    assert!(
        recovered.health().recovery_warnings.is_empty(),
        "compaction must not force repairs: {:?}",
        recovered.health().recovery_warnings
    );
    assert_eq!(cluster_fingerprint(&recovered), live_print);
    let _ = fs::remove_dir_all(&dir);
}
