//! Integration-scale reproduction checks for the §4 figures (Fig. 5–7) and
//! the in-text statistics (S1, S2 in DESIGN.md).

use analytics::time::{Date, Month};
use social::generator::{generate, ForumConfig};
use social::post::Forum;
use std::sync::OnceLock;
use usaas::annotate::PeakAnnotator;
use usaas::emerging::EmergingTopicMiner;
use usaas::fulcrum::{Fig7Series, FulcrumAnalysis};
use usaas::outage::OutageDetector;

fn forum() -> &'static Forum {
    static F: OnceLock<Forum> = OnceLock::new();
    F.get_or_init(|| generate(&ForumConfig::default()))
}

fn d(y: i32, m: u8, day: u8) -> Date {
    Date::from_ymd(y, m, day).unwrap()
}

/// S1 — §4.1 subreddit vitals: ~372 posts, ~8190 upvotes, ~5702 comments per
/// week; ~1750 speed-test screenshots over the window.
#[test]
fn s1_subreddit_activity() {
    let f = forum();
    let weeks = (f
        .posts
        .last()
        .unwrap()
        .date
        .days_since(f.posts.first().unwrap().date) as f64
        + 1.0)
        / 7.0;
    let posts_per_week = f.len() as f64 / weeks;
    let upvotes_per_week: f64 = f.posts.iter().map(|p| f64::from(p.upvotes)).sum::<f64>() / weeks;
    let comments_per_week: f64 = f.posts.iter().map(|p| f64::from(p.comments)).sum::<f64>() / weeks;
    assert!(
        (280.0..470.0).contains(&posts_per_week),
        "posts/week {posts_per_week} (paper: 372)"
    );
    assert!(
        (4000.0..16000.0).contains(&upvotes_per_week),
        "upvotes/week {upvotes_per_week} (paper: 8190)"
    );
    assert!(
        (2800.0..12000.0).contains(&comments_per_week),
        "comments/week {comments_per_week} (paper: 5702)"
    );
    let shares = f.speed_shares().count();
    assert!(
        (1300..2400).contains(&shares),
        "speed-test shares {shares} (paper: ~1750)"
    );
}

/// F5a — the top-3 sentiment peaks and their annotations.
#[test]
fn fig5a_sentiment_peaks() {
    let peaks = PeakAnnotator::default().annotate(forum(), 3).unwrap();
    assert_eq!(peaks.len(), 3);
    // Feb 9 '21 pre-orders (positive), Nov 24 '21 delay e-mail (negative),
    // Apr 22 '22 unreported outage (negative, third-highest).
    assert!(peaks
        .iter()
        .any(|p| p.date == d(2021, 2, 9) && p.positive_dominated));
    assert!(peaks
        .iter()
        .any(|p| p.date == d(2021, 11, 24) && !p.positive_dominated));
    assert_eq!(
        peaks[2].date,
        d(2022, 4, 22),
        "Apr 22 is the third-highest peak"
    );
    assert!(!peaks[2].positive_dominated);
    // Annotation: the two event peaks find news; the outage does not, but is
    // corroborated by posters from many countries (paper: 14, ~190 US).
    for p in &peaks {
        if p.date == d(2022, 4, 22) {
            assert!(p.unreported(), "Apr 22 found coverage: {:?}", p.headlines);
            assert!(
                p.countries >= 8,
                "Apr 22 countries {} (paper: 14)",
                p.countries
            );
        } else {
            assert!(!p.unreported(), "{}: no coverage found", p.date);
        }
    }
    let us_reports = forum()
        .on(d(2022, 4, 22))
        .filter(|p| p.country == "US" && p.topic == social::post::PostTopic::Outage)
        .count();
    assert!(
        us_reports >= 100,
        "US outage reports {us_reports} (paper: ~190)"
    );
}

/// F5b — the Apr 22 word cloud surfaces outage language near the top.
#[test]
fn fig5b_wordcloud() {
    let cloud = PeakAnnotator::default().day_cloud(forum(), d(2022, 4, 22), 30);
    let rank = ["outage", "offline", "disconnected", "down"]
        .iter()
        .filter_map(|w| cloud.rank_of(w))
        .min();
    assert!(
        matches!(rank, Some(r) if r <= 3),
        "outage language should rank in the top unigrams (paper: 3rd); top: {:?}",
        cloud.top_words(6)
    );
}

/// F6 — keyword spikes: Jan 7 & Aug 30 '22 largest; transients numerous; all
/// majors detected with good precision.
#[test]
fn fig6_outage_detection() {
    let detector = OutageDetector::default();
    let series = detector.keyword_series(forum()).unwrap();
    let mut days: Vec<(Date, f64)> = series.iter().collect();
    days.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let top2: Vec<Date> = days[..2].iter().map(|(day, _)| *day).collect();
    assert!(
        top2.contains(&d(2022, 1, 7)),
        "Jan 7 missing from top-2: {top2:?}"
    );
    assert!(
        top2.contains(&d(2022, 8, 30)),
        "Aug 30 missing from top-2: {top2:?}"
    );

    let detections = detector.detect(forum()).unwrap();
    let truth = starlink::outages::outage_timeline(
        d(2021, 1, 1),
        d(2022, 12, 31),
        &starlink::outages::TransientOutageConfig::default(),
    );
    let score = detector.score_against(&detections, &truth);
    assert_eq!(score.missed_major, 0, "all major outages must be detected");
    assert!(score.precision > 0.6, "precision {}", score.precision);

    // Transients: many smaller peaks beyond the three majors.
    let sensitive = OutageDetector {
        min_peak_score: 2.0,
        ..OutageDetector::default()
    };
    let all = sensitive.detect(forum()).unwrap();
    assert!(
        all.len() >= 13,
        "expected numerous smaller peaks, got {}",
        all.len()
    );
}

/// F7 — the full Fig. 7: rise, mid-2021 dip, decline, subsample stability,
/// and both "wheel of time" sentiment anomalies.
#[test]
fn fig7_speeds_and_fulcrum() {
    let series = FulcrumAnalysis::default()
        .analyze(
            forum(),
            Month::new(2021, 1).unwrap(),
            Month::new(2022, 12).unwrap(),
        )
        .unwrap();
    let s = series.as_slice();

    // Shape: rise Jan→mid '21, Sep'21 still high, strong decline to Dec'22.
    let jan21 = s.median_of(2021, 1).unwrap();
    let may21 = s.median_of(2021, 5).unwrap();
    let sep21 = s.median_of(2021, 9).unwrap();
    let dec22 = s.median_of(2022, 12).unwrap();
    assert!(may21 > jan21 * 1.15, "Jan'21 {jan21} → May'21 {may21}");
    assert!(sep21 > jan21, "Sep'21 {sep21} vs Jan'21 {jan21}");
    assert!(dec22 < sep21 * 0.75, "Sep'21 {sep21} → Dec'22 {dec22}");

    // Stability: 95 %/90 % subsample medians track the full median.
    for p in &series {
        if let (Some(full), Some(s95), Some(s90)) =
            (p.median_down, p.median_down_95, p.median_down_90)
        {
            assert!(
                (s95 - full).abs() / full < 0.15,
                "{}: 95% {s95} vs {full}",
                p.month
            );
            assert!(
                (s90 - full).abs() / full < 0.20,
                "{}: 90% {s90} vs {full}",
                p.month
            );
        }
    }

    // Anomaly 1: Dec'21 faster than Apr'21, yet Pos drastically lower.
    let apr21_pos = s.pos_of(2021, 4).unwrap();
    let dec21_pos = s.pos_of(2021, 12).unwrap();
    assert!(
        dec21_pos < apr21_pos - 0.1,
        "Pos: Apr'21 {apr21_pos} vs Dec'21 {dec21_pos} (should drop despite faster network)"
    );

    // Anomaly 2: Mar'22 → Dec'22 speeds fall, Pos recovers (conditioning).
    // Quarterly means tame the monthly sampling noise of the Pos ratio.
    let mar22 = s.median_of(2022, 3).unwrap();
    assert!(dec22 < mar22, "premise: speeds fall {mar22} → {dec22}");
    let q_mean = |months: [u8; 3]| {
        let xs: Vec<f64> = months.iter().filter_map(|m| s.pos_of(2022, *m)).collect();
        analytics::mean(&xs).unwrap()
    };
    let spring = q_mean([2, 3, 4]);
    let winter = q_mean([10, 11, 12]);
    assert!(
        winter > spring + 0.05,
        "Pos should recover while speeds fall: spring'22 {spring} vs winter'22 {winter}"
    );

    // Total recovered reports near the paper's ~1750.
    let total: usize = series.iter().map(|p| p.reports).sum();
    assert!((1000..2600).contains(&total), "recovered reports {total}");
}

/// S2 — roaming flagged ≥ 10 days before the CEO tweet, positive sentiment.
#[test]
fn s2_roaming_early_detection() {
    let hit = EmergingTopicMiner::default()
        .first_detection(forum(), "roaming")
        .unwrap()
        .expect("roaming must be detected");
    let tweet = d(2022, 3, 3);
    let lead = tweet.days_since(hit.first_flagged);
    assert!(lead >= 10, "lead time {lead} days (paper: ~2 weeks)");
    assert!(
        hit.polarity > 0.0,
        "roaming chatter polarity {}",
        hit.polarity
    );
    // And never before users could have discovered it.
    assert!(hit.first_flagged >= d(2022, 2, 14));
}
