//! Routed-path kernel parity suite.
//!
//! The branchless columnar kernels ([`analytics::kernels`]) back every
//! hot scan in the service — engagement curves, compounding grids,
//! platform splits, MOS feature gathers, sentiment tallies, and the
//! cross-network report. Each kernel carries its own proptest twin in
//! `analytics`; these tests pin the *routed* contract end to end: the
//! service answers through the kernel paths bit-identically to the
//! retained array-of-structs arithmetic, at worker counts 1/4/8, down
//! to the degenerate single-session and no-match edges.

use analytics::time::Date;
use analytics::timeseries::DailySeries;
use conference::dataset::{generate, DatasetConfig};
use conference::records::{CallDataset, EngagementMetric, NetworkMetric};
use netsim::access::AccessType;
use sentiment::analyzer::SentimentAnalyzer;
use sentiment::corpus::TokenCorpus;
use social::generator::{generate as gen_forum, ForumConfig};
use social::post::Forum;
use starlink::constellation::{DeploymentPlanner, RegionalDemand};
use std::sync::OnceLock;
use usaas::service::country_lat_band;
use usaas::{Answer, FeatureSet, PeakAnnotator, Query, UsaasService};

const WORKER_COUNTS: [usize; 3] = [1, 4, 8];

fn dataset() -> &'static CallDataset {
    static D: OnceLock<CallDataset> = OnceLock::new();
    D.get_or_init(|| generate(&DatasetConfig::small(2000, 0xC0DE)))
}

fn forum() -> &'static Forum {
    static F: OnceLock<Forum> = OnceLock::new();
    F.get_or_init(|| {
        gen_forum(&ForumConfig {
            authors: 150,
            end: Date::from_ymd(2021, 6, 30).unwrap(),
            ..ForumConfig::default()
        })
    })
}

/// Every kernel-routed query the service serves.
fn queries() -> Vec<Query> {
    let mut qs = vec![
        Query::EngagementCurve {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::Presence,
            bins: 6,
        },
        Query::CompoundingGrid {
            engagement: EngagementMetric::CamOn,
            bins: 4,
        },
        Query::PlatformSensitivity {
            sweep: NetworkMetric::LossPct,
            engagement: EngagementMetric::MicOn,
        },
        Query::MosCorrelation,
        Query::PredictMos {
            features: FeatureSet::Full,
        },
        Query::SentimentPeaks { k: 3 },
        Query::SpeedTrend,
        Query::EmergingTopics,
        Query::OutageTimeline,
    ];
    qs.extend(AccessType::ALL.map(|access| Query::CrossNetwork { access }));
    qs
}

fn answers(svc: &UsaasService) -> Vec<String> {
    queries()
        .iter()
        .map(|q| format!("{q:?} => {:?}", svc.query(q)))
        .collect()
}

/// Worker counts 1/4/8 answer every kernel-routed query identically —
/// Debug formatting renders every float exactly, so string equality is
/// bit equality.
#[test]
fn routed_answers_are_bit_identical_across_worker_counts() {
    let baseline = answers(&UsaasService::build(dataset().clone(), forum().clone(), 1));
    for workers in &WORKER_COUNTS[1..] {
        let svc = UsaasService::build(dataset().clone(), forum().clone(), *workers);
        assert_eq!(
            baseline,
            answers(&svc),
            "workers {workers} diverged from the single-worker answers"
        );
    }
}

/// The cross-network report's masked means equal the array-of-structs
/// reference — filter the records by access type, then run the same
/// sequential `analytics::mean` fold the pre-kernel implementation used.
#[test]
fn cross_network_masked_means_match_aos_reference() {
    for access in AccessType::ALL {
        let rows: Vec<_> = dataset()
            .sessions
            .iter()
            .filter(|s| s.access == access)
            .collect();
        let others: Vec<f64> = dataset()
            .sessions
            .iter()
            .filter(|s| s.access != access)
            .map(|s| s.presence_pct)
            .collect();
        for workers in WORKER_COUNTS {
            let svc = UsaasService::build(dataset().clone(), forum().clone(), workers);
            let answer = svc.query(&Query::CrossNetwork { access });
            if rows.is_empty() {
                assert!(answer.is_err(), "{access:?}: no sessions must be an error");
                continue;
            }
            let Ok(Answer::CrossNetwork(report)) = answer else {
                panic!("{access:?}: unexpected answer {answer:?}");
            };
            assert_eq!(report.sessions, rows.len());
            let aos = |xs: Vec<f64>| analytics::mean(&xs).unwrap();
            assert_eq!(
                report.mean_presence,
                aos(rows.iter().map(|s| s.presence_pct).collect()),
                "{access:?} workers {workers}: presence mean"
            );
            assert_eq!(
                report.mean_mic_on,
                aos(rows.iter().map(|s| s.mic_on_pct).collect()),
                "{access:?} workers {workers}: mic mean"
            );
            assert_eq!(
                report.mean_cam_on,
                aos(rows.iter().map(|s| s.cam_on_pct).collect()),
                "{access:?} workers {workers}: cam mean"
            );
            let others_ref = analytics::mean(&others);
            match others_ref {
                Ok(m) => assert_eq!(report.others_presence, m),
                Err(_) => assert!(report.others_presence.is_nan()),
            }
        }
    }
}

/// A single-session dataset exercises the one-row masks and the
/// everything-filtered complement without panicking, identically at
/// every worker count.
#[test]
fn single_session_edges_are_consistent() {
    let mut tiny = generate(&DatasetConfig::small(1, 7));
    tiny.sessions.truncate(1);
    let access = tiny.sessions[0].access;
    // The outage join needs a forum; a small one keeps the focus on the
    // one-row telemetry masks.
    let small_forum = gen_forum(&ForumConfig {
        authors: 20,
        end: Date::from_ymd(2021, 3, 31).unwrap(),
        ..ForumConfig::default()
    });
    let mut prints = Vec::new();
    for workers in WORKER_COUNTS {
        let svc = UsaasService::build(tiny.clone(), small_forum.clone(), workers);
        let target = svc.query(&Query::CrossNetwork { access });
        let Ok(Answer::CrossNetwork(report)) = &target else {
            panic!("single session must answer its own access type: {target:?}");
        };
        assert_eq!(report.sessions, 1);
        assert!(
            report.others_presence.is_nan(),
            "empty complement mask must surface as NaN"
        );
        let miss = AccessType::ALL
            .into_iter()
            .find(|a| *a != access)
            .expect("more than one access type exists");
        assert!(
            svc.query(&Query::CrossNetwork { access: miss }).is_err(),
            "no-match mask must be a typed error"
        );
        prints.push(format!("{target:?}"));
    }
    assert!(
        prints.windows(2).all(|w| w[0] == w[1]),
        "single-session report must not depend on the worker count"
    );
}

/// The sentiment-peak daily series is tallied through the branchless
/// `masked_slot_counts` kernel (`series_from_scores`): the day offset is
/// the slot and the strong-sentiment predicates compile to row masks.
/// Pin it against the retained array-of-structs walk — score each post's
/// text, then `DailySeries::add` in post order with the reference
/// `else if` (a strong-positive post never also counts negative) — and
/// against the string-path `sentiment_series`, at every worker count.
#[test]
fn sentiment_series_kernel_matches_aos_walk() {
    let forum = forum();
    let (start, end) = forum.date_range().expect("fixture forum is non-empty");
    let analyzer = SentimentAnalyzer::default();
    let mut pos = DailySeries::zeros(start, end).unwrap();
    let mut neg = DailySeries::zeros(start, end).unwrap();
    for post in &forum.posts {
        let s = analyzer.score(&post.text());
        if s.is_strong_positive() {
            pos.add(post.date, 1.0);
        } else if s.is_strong_negative() {
            neg.add(post.date, 1.0);
        }
    }
    let aos = format!("pos={pos:?} neg={neg:?}");
    let annotator = PeakAnnotator::default();
    let string_path = annotator.sentiment_series(forum).unwrap();
    assert_eq!(
        aos,
        format!(
            "pos={:?} neg={:?}",
            string_path.strong_positive, string_path.strong_negative
        ),
        "string-path series diverged from the AoS walk"
    );
    for workers in WORKER_COUNTS {
        let texts: Vec<String> = forum.posts.iter().map(|p| p.text()).collect();
        let corpus = TokenCorpus::from_texts(&texts, workers);
        let series = annotator
            .sentiment_series_interned(forum, &corpus, workers)
            .unwrap();
        assert_eq!(
            aos,
            format!(
                "pos={:?} neg={:?}",
                series.strong_positive, series.strong_negative
            ),
            "workers {workers}: kernel series diverged from the AoS walk"
        );
    }
}

/// Deployment advice converts per-country strong-negative volume into the
/// planner's latitude-band demand through the `masked_slot_counts`
/// scatter (`sentiment_demand`), and the incremental `DeploymentView`
/// carries the same band counts across epochs. Pin both the view-served
/// and the cold fresh answer against the array-of-structs walk: score
/// each post's text, bump the country's band on strong-negative,
/// normalise, rank.
#[test]
fn deployment_demand_kernel_matches_aos_walk() {
    let forum = forum();
    let analyzer = SentimentAnalyzer::default();
    let mut weights = [0.0f64; 9];
    for post in &forum.posts {
        if analyzer.score(&post.text()).is_strong_negative() {
            weights[country_lat_band(post.country)] += 1.0;
        }
    }
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "fixture must carry strong-negative posts");
    for w in weights.iter_mut() {
        *w /= total;
    }
    let demand = RegionalDemand {
        band_weights: weights,
    };
    let expected = format!(
        "{:?}",
        Answer::Deployment(DeploymentPlanner::gen1().rank(&demand))
    );
    for workers in WORKER_COUNTS {
        let svc = UsaasService::build(dataset().clone(), forum.clone(), workers);
        let served = svc.query(&Query::DeploymentAdvice).unwrap();
        assert_eq!(
            expected,
            format!("{served:?}"),
            "workers {workers}: view-served advice diverged from the AoS walk"
        );
        let fresh = svc
            .snapshot()
            .answer_fresh(&Query::DeploymentAdvice)
            .unwrap();
        assert_eq!(
            expected,
            format!("{fresh:?}"),
            "workers {workers}: fresh advice diverged from the AoS walk"
        );
    }
}

/// The `DeploymentView` band counts survive appends: after a posts append
/// the O(delta) view update must answer identically to the AoS walk over
/// the *combined* forum.
#[test]
fn deployment_view_absorbs_appends_like_the_aos_walk() {
    let extra = gen_forum(&ForumConfig {
        seed: 9,
        authors: 40,
        end: Date::from_ymd(2021, 3, 31).unwrap(),
        ..ForumConfig::default()
    })
    .posts;
    let svc = UsaasService::build(dataset().clone(), forum().clone(), 4);
    svc.append_batch(Vec::new(), extra.clone());
    let analyzer = SentimentAnalyzer::default();
    let mut weights = [0.0f64; 9];
    for post in forum().posts.iter().chain(&extra) {
        if analyzer.score(&post.text()).is_strong_negative() {
            weights[country_lat_band(post.country)] += 1.0;
        }
    }
    let total: f64 = weights.iter().sum();
    for w in weights.iter_mut() {
        *w /= total;
    }
    let demand = RegionalDemand {
        band_weights: weights,
    };
    let expected = format!(
        "{:?}",
        Answer::Deployment(DeploymentPlanner::gen1().rank(&demand))
    );
    let served = svc.query(&Query::DeploymentAdvice).unwrap();
    assert_eq!(
        expected,
        format!("{served:?}"),
        "post-append view advice diverged from the combined AoS walk"
    );
}
