//! Incremental-view parity suite.
//!
//! The materialized-view layer ([`usaas::views`]) promises that carrying
//! an accumulator across epochs and absorbing each appended batch as an
//! O(delta) update produces **bit-identical** answers to rebuilding from
//! the full corpus. These tests pin that contract three ways:
//!
//! 1. A property sweep over random append schedules — sessions-only,
//!    posts-only, mixed, *empty*, and *fully-quarantined* batches in
//!    arbitrary order — asserting after every schedule that the
//!    view-served answer equals [`usaas::Generation::answer_fresh`] (the
//!    cold full-recompute reference) for every view-backed query, across
//!    worker counts 1/4/8.
//! 2. A targeted no-op test: empty and fully-quarantined batches must
//!    neither bump the epoch nor disturb carried views.
//! 3. A persist kill-point round trip: checkpoint a service with live
//!    views, crash it at a journal boundary, and prove the recovered
//!    service rebuilds those views to answers bit-identical to both a
//!    cold rebuild and a never-crashed reference.

use analytics::time::Date;
use conference::dataset::{generate, DatasetConfig};
use conference::records::{CallDataset, EngagementMetric, NetworkMetric, SessionRecord};
use netsim::access::AccessType;
use social::generator::{generate as gen_forum, ForumConfig};
use social::post::{Forum, Post};
use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;
use usaas::{
    journal_record_offsets, FeatureSet, IngestConfig, ItemSource, Query, RawItem, Source,
    UsaasService, JOURNAL_FILE,
};

/// Worker counts exercised by every parity check: the inline single-chunk
/// path, the fixture default, and an over-subscribed fan-out.
const WORKER_COUNTS: [usize; 3] = [1, 4, 8];

fn base_dataset() -> &'static CallDataset {
    static D: OnceLock<CallDataset> = OnceLock::new();
    D.get_or_init(|| generate(&DatasetConfig::small(300, 33)))
}

fn base_forum() -> &'static Forum {
    static F: OnceLock<Forum> = OnceLock::new();
    F.get_or_init(|| {
        gen_forum(&ForumConfig {
            authors: 120,
            end: Date::from_ymd(2021, 6, 30).unwrap(),
            ..ForumConfig::default()
        })
    })
}

fn extra_sessions_a() -> &'static Vec<SessionRecord> {
    static S: OnceLock<Vec<SessionRecord>> = OnceLock::new();
    S.get_or_init(|| generate(&DatasetConfig::small(40, 77)).sessions)
}

fn extra_sessions_b() -> &'static Vec<SessionRecord> {
    static S: OnceLock<Vec<SessionRecord>> = OnceLock::new();
    S.get_or_init(|| generate(&DatasetConfig::small(25, 5)).sessions)
}

fn extra_posts() -> &'static Vec<Post> {
    static P: OnceLock<Vec<Post>> = OnceLock::new();
    P.get_or_init(|| {
        gen_forum(&ForumConfig {
            seed: 9,
            authors: 60,
            end: Date::from_ymd(2021, 3, 31).unwrap(),
            ..ForumConfig::default()
        })
        .posts
    })
}

/// Posts dated strictly after the base forum's last day, so the
/// emerging-topics view can absorb them incrementally instead of
/// falling back to a rebuild (backdated appends force the rebuild).
fn later_posts() -> &'static Vec<Post> {
    static P: OnceLock<Vec<Post>> = OnceLock::new();
    P.get_or_init(|| {
        gen_forum(&ForumConfig {
            seed: 11,
            authors: 40,
            start: Date::from_ymd(2021, 7, 1).unwrap(),
            end: Date::from_ymd(2021, 8, 31).unwrap(),
            ..ForumConfig::default()
        })
        .posts
    })
}

/// Every query the view layer serves, plus the two outage-derived queries
/// (`OutageTimeline`, `CrossNetwork`) that share the outage view through
/// the detection cache.
fn hot_queries() -> Vec<Query> {
    vec![
        Query::EngagementCurve {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::Presence,
            bins: 5,
        },
        Query::EngagementCurve {
            sweep: NetworkMetric::LossPct,
            engagement: EngagementMetric::CamOn,
            bins: 4,
        },
        Query::CompoundingGrid {
            engagement: EngagementMetric::Presence,
            bins: 4,
        },
        Query::PlatformSensitivity {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::Presence,
        },
        Query::MosCorrelation,
        Query::PredictMos {
            features: FeatureSet::Full,
        },
        Query::SentimentPeaks { k: 2 },
        Query::DeploymentAdvice,
        Query::OutageTimeline,
        Query::CrossNetwork {
            access: AccessType::SatelliteLeo,
        },
        Query::SpeedTrend,
        Query::EmergingTopics,
    ]
}

/// Apply append op `tag` to a service. The pool covers every batch shape
/// the views must absorb: sessions-only, posts-only (backdated and
/// strictly-later), mixed, empty, and fully-quarantined (every item a
/// poison pill, nothing committed).
fn apply_op(svc: &UsaasService, tag: u8) {
    let posts = extra_posts();
    match tag {
        0 => {
            svc.append_batch(Vec::new(), Vec::new());
        }
        1 => {
            svc.append_batch(extra_sessions_a().clone(), Vec::new());
        }
        2 => {
            svc.append_batch(Vec::new(), posts[..15.min(posts.len())].to_vec());
        }
        3 => {
            svc.append_batch(
                extra_sessions_b().clone(),
                posts[15..30.min(posts.len())].to_vec(),
            );
        }
        4 => {
            let items = vec![
                RawItem::Poison("bad upstream frame"),
                RawItem::Poison("double-freed buffer"),
            ];
            let sources: Vec<Box<dyn Source>> =
                vec![Box::new(ItemSource::new("poison-only", items))];
            svc.ingest_append(sources, &IngestConfig::with_workers(1));
        }
        5 => {
            svc.append_batch(Vec::new(), posts[30..40.min(posts.len())].to_vec());
        }
        6 => {
            let later = later_posts();
            svc.append_batch(Vec::new(), later[..25.min(later.len())].to_vec());
        }
        _ => panic!("unknown op {tag}"),
    }
}

/// Build a service, install the hot views by querying once, run the
/// schedule (querying after each op so intermediate epochs are served by
/// carried views too), and return the final debug-formatted answers.
fn run_schedule(schedule: &[u8], workers: usize) -> (UsaasService, Vec<String>) {
    let svc = UsaasService::build(base_dataset().clone(), base_forum().clone(), workers);
    let queries = hot_queries();
    for q in &queries {
        let _ = svc.query(q);
    }
    assert!(
        !svc.snapshot().views().is_empty(),
        "hot queries must install materialized views"
    );
    for &op in schedule {
        apply_op(&svc, op);
        for q in &queries {
            let _ = svc.query(q);
        }
    }
    let answers = queries
        .iter()
        .map(|q| format!("{q:?} => {:?}", svc.query(q)))
        .collect();
    (svc, answers)
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random append schedules: the view-served answer equals the
        /// cold full recompute for every hot query, and worker counts
        /// 1/4/8 agree to the bit (Debug formatting shows every float
        /// exactly, so string equality is bit equality).
        #[test]
        fn incremental_views_match_cold_rebuild(
            schedule in prop::collection::vec(0u8..7, 0..5),
        ) {
            let mut per_worker = Vec::new();
            for workers in WORKER_COUNTS {
                let (svc, answers) = run_schedule(&schedule, workers);
                let generation = svc.snapshot();
                for (q, served) in hot_queries().iter().zip(&answers) {
                    let fresh = format!("{q:?} => {:?}", generation.answer_fresh(q));
                    prop_assert_eq!(
                        served, &fresh,
                        "schedule {:?} workers {}: view answer diverged from cold rebuild",
                        schedule, workers
                    );
                }
                per_worker.push(answers);
            }
            for answers in &per_worker[1..] {
                prop_assert_eq!(
                    &per_worker[0], answers,
                    "schedule {:?}: workers {:?} disagree", schedule, WORKER_COUNTS
                );
            }
        }
    }
}

/// Empty and fully-quarantined batches are no-ops: no epoch bump, views
/// untouched, answers unchanged and still equal to a cold rebuild.
#[test]
fn noop_batches_leave_views_intact() {
    for workers in WORKER_COUNTS {
        let (svc, before) = run_schedule(&[1], workers);
        let epoch = svc.epoch();
        let views_before = svc.snapshot().views().len();
        apply_op(&svc, 0); // empty
        apply_op(&svc, 4); // fully quarantined
        assert_eq!(svc.epoch(), epoch, "no-op batches must not bump the epoch");
        assert_eq!(svc.snapshot().views().len(), views_before);
        let generation = svc.snapshot();
        for (q, served) in hot_queries().iter().zip(&before) {
            assert_eq!(
                *served,
                format!("{q:?} => {:?}", svc.query(q)),
                "answers changed across no-op batches (workers {workers})"
            );
            assert_eq!(
                *served,
                format!("{q:?} => {:?}", generation.answer_fresh(q)),
                "no-op batches left views out of sync with a cold rebuild"
            );
        }
    }
}

/// Fresh scratch directory under the system temp dir, emptied first.
fn tmp_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("usaas-views-{}-{test}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Persist round trip across a kill point: a checkpointed service with
/// live views crashes right after a journaled append; recovery must
/// materialize the persisted view keys and serve answers bit-identical to
/// both its own cold rebuild and a never-crashed reference.
#[test]
fn recovered_views_match_cold_rebuild_across_kill_point() {
    let dir = tmp_dir("kill-point");
    let queries = hot_queries();

    // Live run: install views, checkpoint (persists the view keys), then
    // two more journaled appends the snapshot does not cover.
    {
        let svc =
            UsaasService::build_persistent(base_dataset().clone(), base_forum().clone(), 2, &dir)
                .unwrap();
        for q in &queries {
            let _ = svc.query(q);
        }
        apply_op(&svc, 1);
        svc.checkpoint().unwrap();
        apply_op(&svc, 2);
        apply_op(&svc, 3);
    }

    // Crash between the second and third post-checkpoint appends: cut the
    // journal at the boundary after append 2.
    let offsets = journal_record_offsets(&dir.join(JOURNAL_FILE)).unwrap();
    assert!(offsets.len() >= 3, "three appends journal three records");
    fs::OpenOptions::new()
        .write(true)
        .open(dir.join(JOURNAL_FILE))
        .unwrap()
        .set_len(offsets[2])
        .unwrap();

    for workers in WORKER_COUNTS {
        let recovered = UsaasService::open_or_recover(&dir, workers).unwrap();
        assert!(
            recovered.health().recovery_warnings.is_empty(),
            "clean boundary cut must not warn"
        );
        let generation = recovered.snapshot();
        assert!(
            !generation.views().is_empty(),
            "recovery must rebuild the checkpointed view keys"
        );

        let reference = UsaasService::build(base_dataset().clone(), base_forum().clone(), workers);
        for q in &queries {
            let _ = reference.query(q);
        }
        apply_op(&reference, 1);
        apply_op(&reference, 2);

        let ref_generation = reference.snapshot();
        for q in &queries {
            let served = format!("{:?}", recovered.query(q));
            assert_eq!(
                served,
                format!("{:?}", generation.answer_fresh(q)),
                "recovered view answer diverged from cold rebuild ({q:?}, workers {workers})"
            );
            assert_eq!(
                served,
                format!("{:?}", ref_generation.answer_fresh(q)),
                "recovered view answer diverged from never-crashed reference ({q:?})"
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}
