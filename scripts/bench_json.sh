#!/usr/bin/env bash
# Run the JSON-exporting benches and publish criterion-style medians.
#
# The offline criterion harness appends one record per benchmark to the
# file named by BENCH_JSON (see compat/criterion). This script pins that
# file per bench target, starting each from a clean slate so every array
# holds exactly one run:
#
#   frame_scan        -> results/BENCH_frame.json
#   social_pipeline   -> results/BENCH_social.json (string vs interned vs
#                        interned_par4 groups for the §4 text substrate)
#   ingest_resilience -> results/BENCH_ingest.json (healthy vs 1%-fault vs
#                        breaker-open streaming ingestion)
#   persist_roundtrip -> results/BENCH_persist.json (checkpoint write vs
#                        snapshot-only recovery vs journal-replay recovery,
#                        plus the persist_differential group: full vs
#                        dirty-column differential checkpoints and the
#                        diff-fast-path recovery)
#   views_incremental -> results/BENCH_views.json (fresh full recompute vs
#                        materialized-view O(delta) maintenance of the hot
#                        answer set at 1k/10k/100k-call corpora)
#   kernels           -> results/BENCH_kernels.json (branchy row loops vs
#                        the branchless predicated kernels on a §3-shaped
#                        masked column workload)
#   service_scaleout  -> results/BENCH_scaleout.json (consistent-hash
#                        partitioned serving: cached query_batch routing
#                        overhead and uncached text-scan scatter-gather at
#                        partitions 1/2/4/8)
#   daemon_steady_state -> results/BENCH_daemon.json (the continuous-serving
#                        daemon's tick loop: healthy feed vs 1%-fault feed
#                        vs the submit-queue admission path)
#   cluster_daemon    -> results/BENCH_daemon.json (appended: the same
#                        tick loop driving a two-partition cluster through
#                        the router's partitioning ingest)
#
# Usage: scripts/bench_json.sh [extra `cargo bench` args...]
set -euo pipefail

cd "$(dirname "$0")/.."

mkdir -p results

# run_bench <bench target> <output json> [extra args...]
run_bench() {
    local bench="$1" out="$2"
    shift 2
    rm -f "$out"
    # Absolute path: cargo runs the bench binary from the bench package
    # root, not the workspace root.
    BENCH_JSON="$(pwd)/$out" cargo bench -p bench --bench "$bench" "$@"
    echo
    echo "wrote $out:"
    cat "$out"
    echo
}

# append_bench <bench target> <output json> [extra args...]: like
# run_bench but without the clean slate — for targets that share one
# results file (the exporter appends to an existing array).
append_bench() {
    local bench="$1" out="$2"
    shift 2
    BENCH_JSON="$(pwd)/$out" cargo bench -p bench --bench "$bench" "$@"
    echo
    echo "appended to $out:"
    cat "$out"
    echo
}

run_bench frame_scan results/BENCH_frame.json "$@"
run_bench social_pipeline results/BENCH_social.json "$@"
run_bench ingest_resilience results/BENCH_ingest.json "$@"
run_bench persist_roundtrip results/BENCH_persist.json "$@"
run_bench views_incremental results/BENCH_views.json "$@"
run_bench kernels results/BENCH_kernels.json "$@"
run_bench service_scaleout results/BENCH_scaleout.json "$@"
run_bench daemon_steady_state results/BENCH_daemon.json "$@"
append_bench cluster_daemon results/BENCH_daemon.json "$@"
