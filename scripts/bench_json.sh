#!/usr/bin/env bash
# Run the frame_scan bench and export criterion-style medians as JSON.
#
# The offline criterion harness appends one record per benchmark to the
# file named by BENCH_JSON (see compat/criterion). This script pins that
# file to results/BENCH_frame.json, starting from a clean slate so the
# array holds exactly one run.
#
# Usage: scripts/bench_json.sh [extra `cargo bench` args...]
set -euo pipefail

cd "$(dirname "$0")/.."

out="results/BENCH_frame.json"
mkdir -p results
rm -f "$out"

# Absolute path: cargo runs the bench binary from the bench package root,
# not the workspace root.
BENCH_JSON="$(pwd)/$out" cargo bench -p bench --bench frame_scan "$@"

echo
echo "wrote $out:"
cat "$out"
