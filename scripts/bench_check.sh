#!/usr/bin/env bash
# Bench regression gate: re-run the JSON-exporting benches and fail if
# any benchmark's median regresses more than THRESHOLD_PCT (default 25%)
# against the committed baseline under results/.
#
# The committed results/BENCH_*.json files are the baseline; fresh runs
# land in a scratch directory and are compared id-by-id. The comparison
# is the fresh run's *minimum* against the baseline *median*: the min is
# the least load-sensitive statistic a timing run produces, so transient
# CI noise (especially on the fsync-heavy persistence benches) doesn't
# flake the gate, while a real slowdown — which shifts the whole
# distribution, min included — still trips it. A bench target that
# fails is re-run once and only a *repeated* failure fails the gate: a
# noise spike won't reproduce, a real regression will. Ids present in
# only one side are reported but do not fail the gate (new benches have
# no baseline yet; retired ones keep their history). Faster-than-
# baseline runs never fail.
#
# Usage: scripts/bench_check.sh [threshold-pct]
set -euo pipefail

cd "$(dirname "$0")/.."

THRESHOLD_PCT="${1:-25}"
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

BENCHES=(
    "frame_scan BENCH_frame.json"
    "social_pipeline BENCH_social.json"
    "ingest_resilience BENCH_ingest.json"
    "persist_roundtrip BENCH_persist.json"
    "views_incremental BENCH_views.json"
    "kernels BENCH_kernels.json"
    "service_scaleout BENCH_scaleout.json"
    "daemon_steady_state,cluster_daemon BENCH_daemon.json"
)

# Flatten a bench JSON array (one record per line, see compat/criterion)
# into "id<TAB>min_ns<TAB>median_ns" triples. Each field is matched by
# name wherever it sits in the record, so reordering or inserting fields
# in the exporter cannot silently produce garbage; a file that yields no
# complete triples is a loud error, not an empty (vacuously passing)
# comparison.
stats() {
    awk '
        /"id"/ {
            id = ""; min = ""; med = ""
            if (match($0, /"id": *"[^"]*"/)) {
                id = substr($0, RSTART, RLENGTH)
                sub(/^"id": *"/, "", id); sub(/"$/, "", id)
            }
            if (match($0, /"min_ns": *[0-9]+/)) {
                min = substr($0, RSTART, RLENGTH)
                sub(/^"min_ns": */, "", min)
            }
            if (match($0, /"median_ns": *[0-9]+/)) {
                med = substr($0, RSTART, RLENGTH)
                sub(/^"median_ns": */, "", med)
            }
            if (id != "" && min != "" && med != "") {
                printf "%s\t%s\t%s\n", id, min, med
                n++
            }
        }
        END {
            if (n == 0) {
                printf "stats: no benchmark records parsed from %s\n", FILENAME > "/dev/stderr"
                exit 1
            }
        }
    ' "$1"
}

# run_and_compare <bench[,bench...]> <baseline> <current>: run every
# listed bench target into one fresh JSON (the exporter appends, so
# targets sharing a results file accumulate into a single array), print
# the per-id verdicts, and return the gate status for this entry.
run_and_compare() {
    local benches="$1" baseline="$2" current="$3" bench
    rm -f "$current"
    for bench in ${benches//,/ }; do
        BENCH_JSON="$current" cargo bench -p bench --bench "$bench" >/dev/null
    done
    stats "$baseline" >"$SCRATCH/base.tsv" || return 1
    stats "$current" >"$SCRATCH/cur.tsv" || return 1
    # Join on id: fresh min vs baseline median.
    awk -F'\t' -v pct="$THRESHOLD_PCT" '
        NR == FNR { base[$1] = $3; next }
        {
            if (!($1 in base)) { printf "NEW   %s (no baseline)\n", $1; next }
            b = base[$1]; c = $2; seen[$1] = 1
            limit = b * (1 + pct / 100)
            if (c > limit) {
                printf "FAIL  %s: min %d ns vs baseline median %d ns (>+%s%%)\n", $1, c, b, pct
                bad = 1
            } else {
                printf "OK    %s: min %d ns vs baseline median %d ns\n", $1, c, b
            }
        }
        END {
            for (id in base) if (!(id in seen)) printf "GONE  %s (baseline only)\n", id
            exit bad
        }
    ' "$SCRATCH/base.tsv" "$SCRATCH/cur.tsv"
}

fail=0
for entry in "${BENCHES[@]}"; do
    read -r bench json <<<"$entry"
    baseline="results/$json"
    if [[ ! -f "$baseline" ]]; then
        echo "SKIP $bench: no committed baseline $baseline"
        continue
    fi
    current="$SCRATCH/$json"
    echo "== $bench =="
    if verdict=$(run_and_compare "$bench" "$baseline" "$current"); then
        echo "$verdict"
    else
        echo "$verdict"
        echo "-- retrying $bench to separate noise from regression --"
        if verdict=$(run_and_compare "$bench" "$baseline" "$current"); then
            echo "$verdict"
        else
            echo "$verdict"
            fail=1
        fi
    fi
done

if [[ "$fail" -ne 0 ]]; then
    echo "bench regression gate: FAILED (threshold +${THRESHOLD_PCT}%)" >&2
    exit 1
fi
echo "bench regression gate: OK (threshold +${THRESHOLD_PCT}%)"
