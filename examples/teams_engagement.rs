//! The §3 study end-to-end: generate a call dataset and print the Fig. 1–4
//! analyses (engagement vs network conditions, compounding, platforms, MOS).
//!
//! ```sh
//! cargo run --release --example teams_engagement [calls]
//! ```

use conference::dataset::{generate, DatasetConfig};
use conference::records::{EngagementMetric, NetworkMetric};
use usaas::correlate;
use usaas::report;

fn main() {
    let calls: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8000);
    println!(
        "simulating {calls} enterprise calls (Jan–Apr 2022, business hours, 3+ participants)…"
    );
    let dataset = generate(&DatasetConfig {
        calls,
        ..DatasetConfig::default()
    });
    println!("{} sessions\n", dataset.len());

    // Fig. 1 — four panels.
    for sweep in NetworkMetric::ALL {
        println!("=== Fig. 1: engagement vs {} ===", sweep.label());
        for metric in EngagementMetric::ALL {
            match correlate::engagement_curve(&dataset, sweep, metric, 6, 10) {
                Ok(curve) => {
                    print!(
                        "{}",
                        report::curve_table(metric.label(), sweep.label(), "engagement", &curve)
                    );
                }
                Err(e) => println!("{}: {e}", metric.label()),
            }
        }
        println!();
    }

    // Fig. 2 — compounding grid.
    match correlate::compounding_grid(&dataset, EngagementMetric::Presence, 5, 8) {
        Ok(grid) => {
            println!(
                "{}",
                report::grid_table("Fig. 2: Presence over latency (x, ms) × loss (y, %)", &grid)
            );
            if let (Some(min), Some(max)) = (grid.min_value(), grid.max_value()) {
                println!(
                    "worst cell dips to {min:.0} (best = {max:.0}) — the compounding effect\n"
                );
            }
        }
        Err(e) => println!("grid: {e}"),
    }

    // Fig. 3 — platforms.
    println!("=== Fig. 3: Presence vs loss per platform ===");
    if let Ok(curves) = correlate::platform_curves(
        &dataset,
        NetworkMetric::LossPct,
        EngagementMetric::Presence,
        4,
        8,
    ) {
        for (platform, curve) in curves {
            print!(
                "{}",
                report::curve_table(platform.label(), "loss (%)", "presence", &curve)
            );
        }
    }
    println!();

    // Fig. 4 — engagement vs MOS.
    println!("=== Fig. 4: MOS vs engagement ===");
    for metric in EngagementMetric::ALL {
        if let Ok(curve) = correlate::mos_by_engagement(&dataset, metric, 4, 3) {
            print!(
                "{}",
                report::curve_table(metric.label(), "engagement (%)", "MOS", &curve)
            );
        }
    }
    if let Ok(ranking) = correlate::mos_correlations(&dataset) {
        println!("\ncorrelation with MOS (strongest first):");
        for (metric, r) in ranking {
            println!("  {:>10}: r = {r:.3}", metric.label());
        }
    }

    // §6 — confounders.
    if let Ok(rep) = correlate::confounder_report(&dataset) {
        println!("\n=== §6 confounder effect sizes (presence points) ===");
        println!("  network:      {:.1}", rep.network_effect);
        println!("  platform:     {:.1}", rep.platform_effect);
        println!("  meeting size: {:.1}", rep.meeting_size_effect);
        println!("  conditioning: {:.1}", rep.conditioning_effect);
    }
}
