//! The §5 MOS predictor: train on the sparse explicit ratings, predict
//! quality for *every* session, and compare feature sets — quantifying the
//! paper's claim that engagement is an "early and more readily available
//! indication of call quality".
//!
//! ```sh
//! cargo run --release --example mos_prediction [calls]
//! ```

use conference::dataset::{generate_with, DatasetConfig};
use conference::CallSimulator;
use usaas::predict::{predict_all, train_and_evaluate, FeatureSet};

fn main() {
    let calls: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000);

    // Use a raised feedback rate (top of the paper's 0.1–1 % band scaled up)
    // so a laptop-sized dataset still yields enough labels to train on.
    let mut simulator = CallSimulator::default();
    simulator.feedback.rate = 0.05;
    println!(
        "simulating {calls} calls (feedback rate {:.1}%)…",
        simulator.feedback.rate * 100.0
    );
    let dataset = generate_with(
        &DatasetConfig {
            calls,
            ..DatasetConfig::default()
        },
        &simulator,
    );
    let rated = dataset.rated_sessions().count();
    println!(
        "{} sessions, {rated} rated ({:.2}%)\n",
        dataset.len(),
        100.0 * rated as f64 / dataset.len() as f64
    );

    println!(
        "{:>16} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "features", "MAE", "RMSE", "corr", "base", "skill"
    );
    let mut best = None;
    for features in [
        FeatureSet::NetworkOnly,
        FeatureSet::EngagementOnly,
        FeatureSet::Full,
    ] {
        match train_and_evaluate(&dataset, features, 4) {
            Ok((model, eval)) => {
                println!(
                    "{:>16} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>7.1}%",
                    format!("{features:?}"),
                    eval.mae,
                    eval.rmse,
                    eval.correlation,
                    eval.baseline_mae,
                    eval.skill() * 100.0
                );
                if features == FeatureSet::Full {
                    best = Some(model);
                }
            }
            Err(e) => println!("{features:?}: {e}"),
        }
    }

    if let Some(model) = best {
        let preds = predict_all(&dataset, &model).expect("predict all");
        let mean = analytics::mean(&preds).expect("non-empty");
        // Validate against the simulator's hidden latent quality.
        let truth: Vec<f64> = dataset.sessions.iter().map(|s| s.latent_quality).collect();
        let corr = analytics::pearson(&preds, &truth).expect("corr");
        println!(
            "\npredicted MOS for all {} sessions (mean {mean:.2});",
            preds.len()
        );
        println!("correlation with the simulator's hidden latent quality: {corr:.3}");
        println!("→ engagement turns a {rated}-label trickle into full-coverage quality telemetry");
    }
}
