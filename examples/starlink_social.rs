//! The §4 study end-to-end: simulate two years of `r/Starlink`, then run the
//! sentiment-peak annotator (Fig. 5), the outage detector (Fig. 6), the
//! speed/fulcrum pipeline (Fig. 7), and the roaming early-detector.
//!
//! ```sh
//! cargo run --release --example starlink_social
//! ```

use analytics::time::Date;
use social::generator::{generate, ForumConfig};
use starlink::outages::{outage_timeline, TransientOutageConfig};
use usaas::annotate::PeakAnnotator;
use usaas::emerging::EmergingTopicMiner;
use usaas::fulcrum::FulcrumAnalysis;
use usaas::outage::OutageDetector;
use usaas::report;

fn main() {
    println!("simulating r/Starlink, Jan'21–Dec'22…");
    let forum = generate(&ForumConfig::default());
    let weeks = 104.4;
    println!(
        "  {} posts (~{:.0}/week; paper: 372/week), {} with speed-test screenshots\n",
        forum.len(),
        forum.len() as f64 / weeks,
        forum.speed_shares().count()
    );

    // Fig. 5a — sentiment peaks with annotations.
    println!("=== Fig. 5a: top sentiment peaks ===");
    let annotator = PeakAnnotator::default();
    match annotator.annotate(&forum, 3) {
        Ok(peaks) => {
            for (i, p) in peaks.iter().enumerate() {
                println!(
                    "{}. {} — {} strong posts, {}",
                    i + 1,
                    p.date,
                    p.strong_posts,
                    if p.positive_dominated {
                        "positive"
                    } else {
                        "negative"
                    }
                );
                println!("   top words: {:?}", p.top_words);
                if p.unreported() {
                    println!(
                        "   NO news coverage found — corroborated by posters in {} countries",
                        p.countries
                    );
                } else {
                    for h in &p.headlines {
                        println!("   news: {h}");
                    }
                }
            }
        }
        Err(e) => println!("annotation failed: {e}"),
    }

    // Fig. 5b — the word cloud of the unreported outage day.
    let apr22 = Date::from_ymd(2022, 4, 22).expect("valid date");
    println!("\n=== Fig. 5b: word cloud for {apr22} ===");
    print!("{}", annotator.day_cloud(&forum, apr22, 12));

    // Fig. 6 — outage detection scored against ground truth.
    println!("\n=== Fig. 6: outage detection ===");
    let detector = OutageDetector::default();
    match detector.detect(&forum) {
        Ok(detections) => {
            println!("{} outage days flagged; strongest:", detections.len());
            for d in detections.iter().take(5) {
                println!(
                    "  {}: {:.0} keyword occurrences (z = {:.1})",
                    d.date, d.occurrences, d.score
                );
            }
            let truth = outage_timeline(
                Date::from_ymd(2021, 1, 1).expect("date"),
                Date::from_ymd(2022, 12, 31).expect("date"),
                &TransientOutageConfig::default(),
            );
            let score = detector.score_against(&detections, &truth);
            println!(
                "vs ground truth: precision {:.2}, major-outage recall {:.2} ({} majors missed)",
                score.precision, score.major_recall, score.missed_major
            );
        }
        Err(e) => println!("detection failed: {e}"),
    }

    // Fig. 7 — speeds + Pos.
    println!("\n=== Fig. 7: monthly OCR'd downlink medians and Pos ===");
    let analysis = FulcrumAnalysis::default();
    match analysis.analyze(
        &forum,
        analytics::time::Month::new(2021, 1).expect("month"),
        analytics::time::Month::new(2022, 12).expect("month"),
    ) {
        Ok(series) => print!("{}", report::fig7_table(&series)),
        Err(e) => println!("fulcrum analysis failed: {e}"),
    }

    // §4.1 — roaming early detection.
    println!("\n=== emerging topics (upvote/comment-weighted) ===");
    match EmergingTopicMiner::default().mine(&forum) {
        Ok(topics) => {
            for t in topics.iter().take(8) {
                println!(
                    "  {}: '{}' (novelty {:.0}x, polarity {:+.2})",
                    t.first_flagged, t.term, t.novelty, t.polarity
                );
            }
            if let Some(roaming) = topics.iter().find(|t| t.term == "roaming") {
                let tweet = Date::from_ymd(2022, 3, 3).expect("date");
                println!(
                    "\n'roaming' flagged {} — {} days before the CEO tweet (paper: ~2 weeks)",
                    roaming.first_flagged,
                    tweet.days_since(roaming.first_flagged)
                );
            }
        }
        Err(e) => println!("mining failed: {e}"),
    }
}
