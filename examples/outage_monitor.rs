//! A streaming outage monitor: replay the forum day by day and raise alerts
//! the moment the keyword/sentiment spike crosses threshold — the
//! operational version of Fig. 6 an ISP would actually run, including the
//! §6 deployment-advice loop driven by where the complaints come from.
//!
//! ```sh
//! cargo run --release --example outage_monitor
//! ```

use analytics::time::Date;
use analytics::timeseries::DailySeries;
use sentiment::analyzer::SentimentAnalyzer;
use sentiment::keywords::KeywordDictionary;
use social::generator::{generate, ForumConfig};
use starlink::constellation::{DeploymentPlanner, RegionalDemand};
use usaas::service::country_lat_band;

/// Streaming alert state: keeps a trailing window of daily keyword counts
/// and flags days that exceed `threshold ×` the trailing median.
struct Monitor {
    window: Vec<f64>,
    window_days: usize,
    threshold: f64,
}

impl Monitor {
    fn new(window_days: usize, threshold: f64) -> Monitor {
        Monitor {
            window: Vec::new(),
            window_days,
            threshold,
        }
    }

    /// Feed one day's count; returns `Some(baseline)` when alerting.
    fn observe(&mut self, count: f64) -> Option<f64> {
        let baseline = analytics::median(&self.window).unwrap_or(0.0);
        let alert =
            self.window.len() >= self.window_days / 2 && count > (baseline + 5.0) * self.threshold;
        self.window.push(count);
        if self.window.len() > self.window_days {
            self.window.remove(0);
        }
        alert.then_some(baseline)
    }
}

fn main() {
    println!("simulating r/Starlink…");
    let forum = generate(&ForumConfig {
        authors: 6000,
        ..ForumConfig::default()
    });
    let dict = KeywordDictionary::outages();
    let analyzer = SentimentAnalyzer::default();

    let start = Date::from_ymd(2021, 1, 1).expect("date");
    let end = Date::from_ymd(2022, 12, 31).expect("date");
    let mut series = DailySeries::zeros(start, end).expect("series");
    // Pre-compute the daily negative keyword counts (a real deployment
    // would ingest incrementally; the monitor below *consumes* them
    // incrementally).
    for post in &forum.posts {
        let text = post.text();
        let hits = dict.count_matches(&text);
        if hits > 0 {
            let s = analyzer.score(&text);
            if s.negative > s.positive && s.negative > s.neutral {
                series.add(post.date, hits as f64);
            }
        }
    }

    println!("replaying {} days…\n", series.len());
    let mut monitor = Monitor::new(28, 4.0);
    let mut alerts: Vec<Date> = Vec::new();
    let mut complaint_bands = [0.0f64; 9];
    for (date, count) in series.iter() {
        if let Some(baseline) = monitor.observe(count) {
            // Collapse multi-day alerts into the first day.
            if alerts.last().is_none_or(|last| date.days_since(*last) > 2) {
                println!(
                    "ALERT {date}: {count:.0} negative outage mentions (baseline {baseline:.0})"
                );
                alerts.push(date);
                // Where are the complaints coming from? (feeds deployment advice)
                for post in forum.on(date) {
                    if dict.matches(&post.text()) {
                        complaint_bands[country_lat_band(post.country)] += 1.0;
                    }
                }
            }
        }
    }
    println!("\n{} alert episodes raised", alerts.len());
    for known in ["2022-01-07", "2022-04-22", "2022-08-30"] {
        let hit = alerts.iter().any(|a| a.to_string() == known);
        println!(
            "  known major outage {known}: {}",
            if hit { "caught" } else { "MISSED" }
        );
    }

    // §6: feed the complaint geography into the deployment planner.
    let total: f64 = complaint_bands.iter().sum();
    if total > 0.0 {
        for b in complaint_bands.iter_mut() {
            *b /= total;
        }
        let planner = DeploymentPlanner::gen1();
        let recs = planner.rank(&RegionalDemand {
            band_weights: complaint_bands,
        });
        println!("\ndeployment advice from complaint geography:");
        for r in recs.iter().take(3) {
            println!(
                "  {:>30}  score {:.3}  ({} satellites remaining)",
                r.shell, r.score, r.remaining
            );
        }
    }
}
