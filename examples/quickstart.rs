//! Quickstart: build a small USaaS instance and ask it the paper's flagship
//! question — *how do Starlink users perceive the conferencing service?*
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use conference::dataset::{generate, DatasetConfig};
use netsim::access::AccessType;
use social::generator::{generate as generate_forum, ForumConfig};
use usaas::service::{Answer, Query, UsaasService};

fn main() {
    // 1. Simulate the two data sources the paper mined.
    //    (Small sizes for a fast demo; crank `calls`/`authors` up for the
    //    full reproduction — see the `bench` crate.)
    println!("simulating conferencing telemetry…");
    let mut call_config = DatasetConfig::small(1500, 7);
    call_config.leo_outage_calendar = starlink::outages::major_outages()
        .into_iter()
        .map(|o| (o.date, o.severity))
        .collect();
    let dataset = generate(&call_config);
    println!(
        "  {} sessions across {} calls",
        dataset.len(),
        dataset.call_count()
    );

    println!("simulating two years of r/Starlink…");
    let forum = generate_forum(&ForumConfig {
        authors: 3000,
        ..ForumConfig::default()
    });
    println!("  {} posts", forum.len());

    // 2. Stand up the service (parallel ingestion into the signal store).
    let service = UsaasService::build(dataset, forum, 4);
    let (implicit, explicit, social) = service.signal_counts();
    println!("\nsignal store: {implicit} implicit, {explicit} explicit, {social} social");
    println!(
        "(the paper's point: explicit feedback is {}x scarcer than implicit signals)",
        implicit / explicit.max(1)
    );

    // 3. The §5 flagship query.
    let answer = service
        .query(&Query::CrossNetwork {
            access: AccessType::SatelliteLeo,
        })
        .expect("cross-network query");
    let Answer::CrossNetwork(report) = answer else {
        unreachable!()
    };
    println!("\n=== Teams-on-Starlink (cross-network report) ===");
    println!("sessions on Starlink:     {}", report.sessions);
    println!(
        "mean Presence:            {:.1}% (others: {:.1}%)",
        report.mean_presence, report.others_presence
    );
    println!(
        "mean Mic On / Cam On:     {:.1}% / {:.1}%",
        report.mean_mic_on, report.mean_cam_on
    );
    match report.mos {
        Some(mos) => println!("MOS (sampled ratings):    {mos:.2}"),
        None => println!("MOS: no ratings sampled (that scarcity is the paper's motivation)"),
    }
    if let Some(p) = report.outage_day_presence {
        println!(
            "presence on socially-detected outage days: {p:.1}% ({} days joined)",
            report.outage_days_joined
        );
        println!("→ implicit signals corroborate the social outage reports");
    }

    // 4. Operators ask many questions at once: `query_batch` fans a query
    //    slice out over scoped threads and answers land in input order.
    //    (The outage-detection pass above is cached, so `OutageTimeline`
    //    here does not re-scan the forum.)
    let batch = service.query_batch(&[
        Query::OutageTimeline,
        Query::SpeedTrend,
        Query::SentimentPeaks { k: 3 },
    ]);
    println!(
        "\n=== batch query ({} answers, computed in parallel) ===",
        batch.len()
    );
    for answer in batch {
        match answer.expect("batch query") {
            Answer::Outages(o) => println!("outage timeline:          {} detections", o.len()),
            Answer::Speeds(s) => println!("speed trend:              {} monthly medians", s.len()),
            Answer::Peaks(p) => println!("sentiment peaks:          {} annotated", p.len()),
            other => unreachable!("unexpected answer {other:?}"),
        }
    }
}
