//! Offline stand-in for `proptest` (the subset this workspace uses).
//!
//! Supports the `proptest! { #[test] fn name(x in strategy, ..) { .. } }`
//! macro with range strategies over ints and floats, tuples of strategies,
//! `prop::collection::vec(elem, len_range)`, simple `".{lo,hi}"` string
//! patterns, and `prop_assert!`/`prop_assert_eq!`. Each property runs a
//! fixed number of deterministic cases (seeded from the test name) instead
//! of upstream's adaptive shrinking runner — no shrinking, but failures
//! reproduce exactly on re-run.

#![forbid(unsafe_code)]

/// Number of deterministic cases each property runs.
pub const NUM_CASES: usize = 64;

/// Strategies: how to generate a value of some type.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values for one property-test parameter.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// String pattern strategy. Upstream interprets the pattern as a regex;
    /// this stub understands the `".{lo,hi}"` form the workspace uses
    /// (arbitrary text of bounded length) and falls back to `0..=64` chars
    /// for anything else.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let (lo, hi) = parse_dot_repetition(self).unwrap_or((0, 64));
            let len = rng.gen_range(lo..=hi);
            // Mostly printable ASCII with spaces; occasional non-ASCII to
            // keep tokenizers honest.
            (0..len)
                .map(|_| {
                    if rng.gen_bool(0.12) {
                        ' '
                    } else if rng.gen_bool(0.03) {
                        'é'
                    } else {
                        char::from(rng.gen_range(0x21u8..0x7F))
                    }
                })
                .collect()
        }
    }

    fn parse_dot_repetition(pattern: &str) -> Option<(usize, usize)> {
        let inner = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = inner.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    /// Strategy for vectors of another strategy (see [`crate::collection::vec`]).
    pub struct VecStrategy<S> {
        pub(crate) elem: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Vectors of `elem` with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

/// The `prop::` alias namespace used inside `proptest!` bodies.
pub mod prop {
    pub use crate::collection;
}

/// Deterministic per-test RNG construction.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Seed an RNG from the test name (FNV-1a) so every property is
    /// deterministic and independent of execution order.
    pub fn deterministic_rng(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running [`NUM_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::deterministic_rng(stringify!($name));
                for case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let trace = format!(
                        "proptest case {case}/{}: {}", $crate::NUM_CASES,
                        stringify!($($arg = $strat),+)
                    );
                    let _ = &trace;
                    $body
                }
            }
        )+
    };
}

/// `assert!` under a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0.0..=300.0f64, n in 1i32..50) {
            prop_assert!((0.0..=300.0).contains(&x));
            prop_assert!((1..50).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes(xs in prop::collection::vec(-1e3..1e3f64, 2..40)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 40);
            prop_assert!(xs.iter().all(|x| (-1e3..1e3).contains(x)));
        }

        #[test]
        fn tuple_vec_strategy(xy in prop::collection::vec((-1.0..1.0f64, 0.0..2.0f64), 2..10)) {
            for (x, y) in &xy {
                prop_assert!((-1.0..1.0).contains(x));
                prop_assert!((0.0..2.0).contains(y));
            }
        }

        #[test]
        fn string_pattern_lengths(text in ".{0,400}") {
            prop_assert!(text.chars().count() <= 400);
        }
    }

    #[test]
    fn deterministic_between_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::deterministic_rng("seed-name");
        let mut b = crate::test_runner::deterministic_rng("seed-name");
        let s = 0.0..1.0f64;
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
