//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no crates.io access, so the workspace vendors the
//! exact API surface it uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — not the upstream ChaCha12 stream, but statistically strong
//! enough for every simulation and significance test in this workspace.
//! Integer ranges use rejection sampling (no modulo bias); floats use the
//! 53-bit mantissa ladder.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of a type with a standard uniform distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng` (the `seed_from_u64`
/// subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// The standard uniform distribution marker (mirrors `rand::distributions`).
pub struct Standard;

/// A distribution that can sample `T` from any RNG.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled from (mirrors `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` on `[0, span)` by rejection — no modulo bias.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64; reject draws above it.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: f64 = Standard.sample(rng);
                let v = (self.start as f64 + (self.end as f64 - self.start as f64) * u) as $t;
                // Rounding can land exactly on the exclusive end; fold that
                // measure-zero case back onto the start.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u: f64 = Standard.sample(rng);
                ((lo as f64 + (hi as f64 - lo as f64) * u) as $t).clamp(lo, hi)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (not upstream's ChaCha12 —
    /// streams differ from real `rand`, determinism within the workspace is
    /// what matters).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Slice utilities (mirrors `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..32).map(|_| r.gen::<u64>()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_uniformly() {
        let mut r = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 6];
        for _ in 0..60_000 {
            counts[r.gen_range(0..6usize)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!((9_300..10_700).contains(c), "bucket {i}: {c}");
        }
        // Inclusive ranges hit both endpoints.
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match r.gen_range(1..=3i32) {
                1 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
        // Negative spans.
        for _ in 0..1000 {
            let v = r.gen_range(-200_000i32..200_000);
            assert!((-200_000..200_000).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(0.25..3.0f64);
            assert!((0.25..3.0).contains(&x));
            let y = r.gen_range(0.0..=300.0f64);
            assert!((0.0..=300.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn works_through_dyn_like_generics() {
        fn takes_unsized<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut r = StdRng::seed_from_u64(6);
        let x = takes_unsized(&mut r);
        assert!((0.0..1.0).contains(&x));
    }
}
