//! Offline stand-in for `serde`.
//!
//! The workspace's record types carry `#[derive(Serialize, Deserialize)]`
//! so they are export-ready, but nothing serializes through serde at runtime
//! (figures are written as hand-formatted text/CSV). This stub provides the
//! trait names and no-op derives so those annotations compile without
//! crates.io access. The traits are blanket-implemented: any bound like
//! `T: Serialize` is satisfied trivially.
//!
//! The [`bin`] module is a real (not stubbed) little-endian binary codec
//! used by the `usaas::persist` durable-snapshot/journal subsystem: a
//! bounds-checked [`bin::Writer`]/[`bin::Reader`] pair over plain byte
//! buffers plus the CRC-32 the on-disk records are checksummed with. It is
//! additive — the marker traits above are untouched, so existing
//! `#[derive(Serialize)]` annotations keep compiling unchanged.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod bin;

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Blanket-satisfied owned-deserialization marker.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
