//! Offline stand-in for `serde`.
//!
//! The workspace's record types carry `#[derive(Serialize, Deserialize)]`
//! so they are export-ready, but nothing serializes through serde at runtime
//! (figures are written as hand-formatted text/CSV). This stub provides the
//! trait names and no-op derives so those annotations compile without
//! crates.io access. The traits are blanket-implemented: any bound like
//! `T: Serialize` is satisfied trivially.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Blanket-satisfied owned-deserialization marker.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
