//! Minimal little-endian binary codec for durable on-disk formats.
//!
//! This is the byte-level substrate of the `usaas::persist` snapshot and
//! journal files: a [`Writer`] that appends fixed-width primitives and
//! length-prefixed strings to a `Vec<u8>`, a [`Reader`] that decodes them
//! back with bounds checking (never panicking on truncated or corrupt
//! input — every getter returns `Result`), and the [`crc32`] checksum the
//! persist layer stamps on every record so torn writes and bit flips are
//! detected instead of silently mis-decoded.
//!
//! Conventions:
//!
//! * all integers are little-endian, fixed width;
//! * `f64` round-trips through [`f64::to_bits`], so every payload —
//!   including NaNs with unusual payloads and signed zeros — is preserved
//!   **bit-identically**;
//! * strings and byte blobs are `u64` length-prefixed UTF-8 / raw bytes;
//! * collection lengths are `u64` counts written by the caller.

/// Decoding failure. Deliberately small: the persist layer maps these into
/// its own richer error/warning types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input ended before the requested value was complete.
    UnexpectedEof,
    /// A decoded value violated an invariant (bad tag, bad UTF-8, an
    /// offset out of range, …). The message names the violation.
    Corrupt(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnexpectedEof => write!(f, "unexpected end of input"),
            Error::Corrupt(what) => write!(f, "corrupt input: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Append-only encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Fresh writer with `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Writer {
        Writer {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i32`, little-endian.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (platform-independent width).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` as its IEEE-754 bit pattern — the value (NaN
    /// payloads and signed zeros included) round-trips bit-identically.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append a `u64`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a `u64`-length-prefixed raw byte blob.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start decoding at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed — decoders should check this
    /// at the end so trailing garbage is flagged rather than ignored.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        if self.remaining() < n {
            return Err(Error::UnexpectedEof);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, Error> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, Error> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, Error> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, Error> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i32`.
    pub fn get_i32(&mut self) -> Result<i32, Error> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a `u64` and narrow it to `usize`, rejecting values that do not
    /// fit (corrupt lengths must not wrap).
    pub fn get_usize(&mut self) -> Result<usize, Error> {
        usize::try_from(self.get_u64()?).map_err(|_| Error::Corrupt("length exceeds usize"))
    }

    /// Read a `u64` meant to be a collection length, rejecting lengths
    /// larger than the bytes that remain (each element takes ≥ 1 byte) —
    /// the guard that keeps a corrupt length prefix from turning into a
    /// multi-gigabyte allocation.
    pub fn get_len(&mut self) -> Result<usize, Error> {
        let n = self.get_usize()?;
        if n > self.remaining() {
            return Err(Error::Corrupt("length prefix exceeds remaining input"));
        }
        Ok(n)
    }

    /// Read an `f64` from its bit pattern (bit-identical round trip).
    pub fn get_f64(&mut self) -> Result<f64, Error> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a bool byte, rejecting anything but 0/1.
    pub fn get_bool(&mut self) -> Result<bool, Error> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(Error::Corrupt("bool byte not 0/1")),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, Error> {
        let n = self.get_len()?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map_err(|_| Error::Corrupt("string is not UTF-8"))
    }

    /// Read a length-prefixed raw byte blob.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], Error> {
        let n = self.get_len()?;
        self.take(n)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected — the zlib/`cksum -o3`
/// variant), computed bytewise with an 8-iteration bit loop. Fast enough
/// for checkpoint-sized payloads and dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(65_535);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i32(-123_456);
        w.put_usize(42);
        w.put_f64(-0.0);
        w.put_f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN with payload
        w.put_bool(true);
        w.put_str("héllo wörld");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 65_535);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i32().unwrap(), -123_456);
        assert_eq!(r.get_usize().unwrap(), 42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "héllo wörld");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.put_u64(99);
        w.put_str("hello");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let first = r.get_u64();
            if cut < 8 {
                assert_eq!(first, Err(Error::UnexpectedEof), "cut {cut}");
                continue;
            }
            assert_eq!(first.unwrap(), 99);
            assert!(r.get_str().is_err(), "cut {cut} must fail the string");
        }
    }

    #[test]
    fn hostile_lengths_are_rejected() {
        // A length prefix claiming more data than exists must error before
        // allocating.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_len(), Err(Error::Corrupt(_))));
        let mut r2 = Reader::new(&bytes);
        assert!(r2.get_str().is_err());
        // A bad bool byte is corrupt, not a panic.
        let mut r3 = Reader::new(&[9]);
        assert_eq!(r3.get_bool(), Err(Error::Corrupt("bool byte not 0/1")));
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}
