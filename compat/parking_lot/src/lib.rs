//! Offline stand-in for `parking_lot` (0.12 API subset).
//!
//! Thin wrappers over `std::sync` primitives with parking_lot's ergonomics:
//! `lock()`/`read()`/`write()` return guards directly (no `Result`), and
//! poisoning is transparently ignored — a panicked writer does not wedge
//! every later reader, matching parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, PoisonError};

/// A reader–writer lock with parking_lot's panic-transparent API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (blocks while a writer holds the lock).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// A mutual-exclusion lock with parking_lot's panic-transparent API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn rwlock_survives_writer_panic() {
        let lock = std::sync::Arc::new(RwLock::new(1));
        let l2 = std::sync::Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poisoning writer");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        assert_eq!(*lock.read(), 1);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
