//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! Implements the harness surface the benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with a
//! simple measured runner: one warm-up call, then `sample_size` timed
//! samples per benchmark, reporting min/median/mean to stdout. No HTML
//! reports or statistical regression analysis, but plenty to compare two
//! implementations on the same machine.
//!
//! **JSON export**: when the `BENCH_JSON` environment variable names a
//! file, every benchmark also appends one criterion-style record
//! (`{"id", "min_ns", "median_ns", "mean_ns", "samples"}`) to the JSON
//! array in that file, creating it on first write. `scripts/bench_json.sh`
//! drives this to publish medians under `results/`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::path::Path;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLES: usize = 12;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI arguments are ignored.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.0), self.sample_size, f);
        self
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Time `f`, recording one sample per call until the sample budget is
    /// spent. The first (warm-up) sample is discarded by the reporter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.budget {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // +1 so the first (cold) sample can be dropped from the stats.
    let mut bencher = Bencher {
        samples: Vec::new(),
        budget: sample_size + 1,
    };
    f(&mut bencher);
    if bencher.samples.len() > 1 {
        bencher.samples.remove(0);
    }
    if bencher.samples.is_empty() {
        println!("{name:<48} (no samples — did the closure call iter?)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{name:<48} min {:>12} | median {:>12} | mean {:>12} | n={}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len(),
    );
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if !path.is_empty() {
            let entry = json_entry(name, min, median, mean, sorted.len());
            if let Err(e) = append_entry(Path::new(&path), &entry) {
                eprintln!("BENCH_JSON: could not write {path}: {e}");
            }
        }
    }
}

/// One benchmark record as a JSON object literal. The id is the only string
/// field; it contains no exotic characters in practice, but quotes and
/// backslashes are escaped anyway.
fn json_entry(id: &str, min: Duration, median: Duration, mean: Duration, samples: usize) -> String {
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    format!(
        "{{\"id\": \"{escaped}\", \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"samples\": {samples}}}",
        min.as_nanos(),
        median.as_nanos(),
        mean.as_nanos(),
    )
}

/// Append one record to the JSON array in `path`, keeping the file a valid
/// JSON document after every write: a missing or empty file becomes
/// `[entry]`; an existing array gets `, entry` spliced before the closing
/// bracket.
fn append_entry(path: &Path, entry: &str) -> std::io::Result<()> {
    let existing = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let trimmed = existing.trim_end();
    let next = match trimmed.strip_suffix(']') {
        Some(head) => {
            let head = head.trim_end().trim_end_matches(',');
            if head.is_empty() || head.ends_with('[') {
                format!("[\n  {entry}\n]\n")
            } else {
                format!("{head},\n  {entry}\n]\n")
            }
        }
        None => format!("[\n  {entry}\n]\n"),
    };
    std::fs::write(path, next)
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert_eq!(runs, DEFAULT_SAMPLES + 1);
    }

    #[test]
    fn json_entries_accumulate_into_a_valid_array() {
        let dir = std::env::temp_dir().join(format!("criterion-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let _ = std::fs::remove_file(&path);
        let d = Duration::from_nanos(1500);
        append_entry(&path, &json_entry("scan/aos", d, d, d, 10)).unwrap();
        append_entry(&path, &json_entry("scan/columnar", d, d, d, 10)).unwrap();
        append_entry(&path, &json_entry("scan/parallel", d, d, d, 10)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert_eq!(text.matches("\"id\"").count(), 3);
        assert_eq!(text.matches("\"median_ns\": 1500").count(), 3);
        // Exactly two separating commas at entry level: every entry line
        // but the last ends with one.
        assert_eq!(text.matches("},\n").count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_entry_escapes_quotes() {
        let d = Duration::from_nanos(1);
        let s = json_entry("we\"ird\\id", d, d, d, 1);
        assert!(s.contains("we\\\"ird\\\\id"));
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(5);
            g.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &k| {
                b.iter(|| {
                    runs += k;
                    black_box(runs)
                })
            });
            g.finish();
        }
        assert_eq!(runs, 3 * 6);
    }
}
