//! Offline stand-in for the `crossbeam` crate (0.8 API subset).
//!
//! Provides the two pieces this workspace uses:
//!
//! * [`channel::bounded`] — a blocking bounded **MPMC** channel (std's mpsc
//!   receivers are not cloneable, so this is a small Mutex+Condvar queue);
//! * [`thread::scope`] — scoped threads over `std::thread::scope`, with
//!   crossbeam's `Result`-returning panic surface (a child panic becomes an
//!   `Err` carrying the payload instead of an unwinding join).

#![forbid(unsafe_code)]

/// Bounded MPMC channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        buf: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC — each message is delivered once).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Create a bounded channel of capacity `cap` (≥ 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(cap.max(1)),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue. Errors when all
        /// receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                if inner.buf.len() < inner.cap {
                    inner.buf.push_back(value);
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self
                    .shared
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives. Errors when the channel is empty
        /// and all senders have been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.buf.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Iterator over received messages (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

/// Scoped threads (subset of `crossbeam::thread`).
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    /// Panic payload of a child thread.
    pub type Payload = Box<dyn std::any::Any + Send + 'static>;

    /// Scope result: `Err` when the closure or an unjoined child panicked.
    pub type Result<T> = std::result::Result<T, Payload>;

    /// Child panics parked until someone (a join, or the scope exit) claims
    /// them. `std::thread::scope` replaces child payloads with a generic
    /// message, so panics are caught in the child and routed through here to
    /// keep crossbeam's behaviour of surfacing the original payload.
    struct PanicBox {
        next_id: AtomicUsize,
        parked: Mutex<Vec<(usize, Payload)>>,
    }

    /// Scope handle passed to the closure and to spawned children.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        panics: Arc<PanicBox>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope (for nested
        /// spawns, mirroring crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            let panics = Arc::clone(&self.panics);
            let id = panics.next_id.fetch_add(1, Ordering::Relaxed);
            let child_panics = Arc::clone(&panics);
            let handle = self.inner.spawn(move || {
                let scope = Scope {
                    inner,
                    panics: Arc::clone(&child_panics),
                };
                match catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                    Ok(v) => Some(v),
                    Err(payload) => {
                        child_panics
                            .parked
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push((id, payload));
                        None
                    }
                }
            });
            ScopedJoinHandle {
                inner: handle,
                panics,
                id,
            }
        }
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
        panics: Arc<PanicBox>,
        id: usize,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Join, returning the thread's result or its original panic payload.
        /// A payload claimed here no longer fails the enclosing scope.
        pub fn join(self) -> Result<T> {
            match self.inner.join() {
                Ok(Some(v)) => Ok(v),
                Ok(None) => {
                    let mut parked = self.panics.parked.lock().unwrap_or_else(|e| e.into_inner());
                    let at = parked
                        .iter()
                        .position(|(id, _)| *id == self.id)
                        .expect("panicked child parked its payload");
                    Err(parked.swap_remove(at).1)
                }
                // Unreachable in practice: the child catches its own panics.
                Err(payload) => Err(payload),
            }
        }
    }

    /// Run `f` with a scope in which threads borrowing from the environment
    /// can be spawned; all children are joined before `scope` returns. A
    /// panic — in `f`, or in any child whose handle was not joined —
    /// surfaces as `Err` carrying the original payload.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let panics = Arc::new(PanicBox {
            next_id: AtomicUsize::new(0),
            parked: Mutex::new(Vec::new()),
        });
        let out = catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                f(&Scope {
                    inner: s,
                    panics: Arc::clone(&panics),
                })
            })
        }));
        let mut parked = panics.parked.lock().unwrap_or_else(|e| e.into_inner());
        match (out, parked.pop()) {
            (_, Some((_, payload))) => Err(payload),
            (Ok(v), None) => Ok(v),
            (Err(payload), None) => Err(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn channel_delivers_everything_once() {
        let (tx, rx) = channel::bounded::<usize>(4);
        let total = AtomicUsize::new(0);
        let seen = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..3 {
                let rx = rx.clone();
                let total = &total;
                let seen = &seen;
                scope.spawn(move |_| {
                    for v in rx.iter() {
                        total.fetch_add(v, Ordering::Relaxed);
                        seen.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            drop(rx);
            for v in 1..=100usize {
                tx.send(v).unwrap();
            }
            drop(tx);
        })
        .unwrap();
        assert_eq!(seen.load(Ordering::Relaxed), 100);
        assert_eq!(total.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn send_errors_when_receivers_gone() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_errors_when_senders_gone() {
        let (tx, rx) = channel::bounded::<u8>(2);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn scope_propagates_child_panic_as_err() {
        let r = thread::scope(|scope| {
            scope.spawn(|_| panic!("child died"));
        });
        assert!(r.is_err());
        let msg = r
            .err()
            .and_then(|p| p.downcast::<&str>().ok())
            .map(|s| *s)
            .unwrap_or_default();
        assert_eq!(msg, "child died");
    }

    #[test]
    fn scope_returns_closure_value() {
        let out = thread::scope(|scope| {
            let h = scope.spawn(|_| 21);
            h.join().unwrap() * 2
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
