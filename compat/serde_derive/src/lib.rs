//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! Nothing in this workspace serializes through serde at runtime (figure
//! output is hand-written text/CSV), so the derives only need to *exist* for
//! the many `#[derive(Serialize, Deserialize)]` annotations to compile. They
//! expand to nothing; the traits in the sibling `serde` stub are blanket-
//! implemented for every type.

use proc_macro::TokenStream;

/// Expands to nothing — see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing — see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
